/**
 * @file
 * Error taxonomy for the sim/runtime boundary (Status-style codes
 * carried on exception types).
 *
 * The gem5 panic/fatal split from assert.hpp still stands: internal
 * invariant violations abort via CAMP_ASSERT. Everything a *caller or
 * the environment* can cause is reported with one of these typed
 * exceptions instead of an ad-hoc std::invalid_argument, so the
 * runtime can distinguish "you passed garbage" (InvalidArgument),
 * "this configuration cannot be built" (ConfigError), "the datapath
 * returned a wrong result" (HardwareFault, recoverable by retry or
 * CPU fallback), and "a budget was exhausted" (ResourceExhausted).
 */
#ifndef CAMP_SUPPORT_ERRORS_HPP
#define CAMP_SUPPORT_ERRORS_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

namespace camp {

/** Status-style error codes, one per exception type. */
enum class ErrorCode
{
    Ok = 0,
    InvalidArgument,   ///< caller passed an out-of-contract value
    ConfigError,       ///< configuration cannot describe buildable hardware
    HardwareFault,     ///< the (simulated) datapath produced a wrong result
    ResourceExhausted, ///< a bounded budget (retries, capacity) ran out
    DeadlineExceeded,  ///< the request's deadline passed before completion
    Unavailable,       ///< load was shed; retry later (carries a hint)
    Internal,          ///< an unclassified failure crossed an API boundary
};

inline const char*
error_code_name(ErrorCode code)
{
    switch (code) {
    case ErrorCode::Ok: return "Ok";
    case ErrorCode::InvalidArgument: return "InvalidArgument";
    case ErrorCode::ConfigError: return "ConfigError";
    case ErrorCode::HardwareFault: return "HardwareFault";
    case ErrorCode::ResourceExhausted: return "ResourceExhausted";
    case ErrorCode::DeadlineExceeded: return "DeadlineExceeded";
    case ErrorCode::Unavailable: return "Unavailable";
    case ErrorCode::Internal: return "Internal";
    }
    return "Unknown";
}

/** A retry (with backoff) can plausibly succeed: the failure is a
 * transient property of the datapath or of current load, not of the
 * request itself. */
inline bool
error_retryable(ErrorCode code)
{
    return code == ErrorCode::HardwareFault ||
           code == ErrorCode::Unavailable;
}

/** Base of the typed runtime errors (everything except InvalidArgument). */
class Error : public std::runtime_error
{
  public:
    Error(ErrorCode code, const std::string& what)
        : std::runtime_error(what), code_(code)
    {
    }

    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
};

/**
 * Caller error. Derives std::invalid_argument (not Error) so existing
 * catch sites for the documented throw type keep working.
 */
class InvalidArgument : public std::invalid_argument
{
  public:
    explicit InvalidArgument(const std::string& what)
        : std::invalid_argument(what)
    {
    }

    ErrorCode code() const { return ErrorCode::InvalidArgument; }
};

/** A SimConfig that cannot describe buildable hardware. */
class ConfigError : public Error
{
  public:
    explicit ConfigError(const std::string& what)
        : Error(ErrorCode::ConfigError, what)
    {
    }
};

/** The simulated datapath returned a result that fails validation. */
class HardwareFault : public Error
{
  public:
    explicit HardwareFault(const std::string& what)
        : Error(ErrorCode::HardwareFault, what)
    {
    }
};

/** A bounded budget (retry count, capacity) was exhausted. */
class ResourceExhausted : public Error
{
  public:
    explicit ResourceExhausted(const std::string& what)
        : Error(ErrorCode::ResourceExhausted, what)
    {
    }
};

/** The request's deadline passed before it could complete. */
class DeadlineExceeded : public Error
{
  public:
    explicit DeadlineExceeded(const std::string& what)
        : Error(ErrorCode::DeadlineExceeded, what)
    {
    }
};

/** Load was shed (admission control); retry_after_us() hints when a
 * retry is likely to be admitted (0 = no estimate). */
class Unavailable : public Error
{
  public:
    explicit Unavailable(const std::string& what,
                         std::uint64_t retry_after_us = 0)
        : Error(ErrorCode::Unavailable, what),
          retry_after_us_(retry_after_us)
    {
    }

    std::uint64_t retry_after_us() const { return retry_after_us_; }

  private:
    std::uint64_t retry_after_us_ = 0;
};

/**
 * Classify any in-flight exception by error code, so a layer that must
 * marshal failures across a queue/future boundary (exec::SubmitQueue)
 * can preserve the category instead of flattening everything into a
 * generic std::runtime_error.
 */
inline ErrorCode
error_code_of(const std::exception& error)
{
    if (const auto* typed = dynamic_cast<const Error*>(&error))
        return typed->code();
    if (dynamic_cast<const std::invalid_argument*>(&error) != nullptr)
        return ErrorCode::InvalidArgument;
    return ErrorCode::Internal;
}

/** Rethrow a marshalled (code, message) pair as its typed exception —
 * the inverse of error_code_of for queue waiters. */
[[noreturn]] inline void
throw_error(ErrorCode code, const std::string& what)
{
    switch (code) {
    case ErrorCode::InvalidArgument: throw InvalidArgument(what);
    case ErrorCode::ConfigError: throw ConfigError(what);
    case ErrorCode::HardwareFault: throw HardwareFault(what);
    case ErrorCode::ResourceExhausted: throw ResourceExhausted(what);
    case ErrorCode::DeadlineExceeded: throw DeadlineExceeded(what);
    case ErrorCode::Unavailable: throw Unavailable(what);
    case ErrorCode::Ok:
    case ErrorCode::Internal: break;
    }
    throw Error(ErrorCode::Internal, what);
}

} // namespace camp

#endif // CAMP_SUPPORT_ERRORS_HPP
