/**
 * @file
 * Error taxonomy for the sim/runtime boundary (Status-style codes
 * carried on exception types).
 *
 * The gem5 panic/fatal split from assert.hpp still stands: internal
 * invariant violations abort via CAMP_ASSERT. Everything a *caller or
 * the environment* can cause is reported with one of these typed
 * exceptions instead of an ad-hoc std::invalid_argument, so the
 * runtime can distinguish "you passed garbage" (InvalidArgument),
 * "this configuration cannot be built" (ConfigError), "the datapath
 * returned a wrong result" (HardwareFault, recoverable by retry or
 * CPU fallback), and "a budget was exhausted" (ResourceExhausted).
 */
#ifndef CAMP_SUPPORT_ERRORS_HPP
#define CAMP_SUPPORT_ERRORS_HPP

#include <stdexcept>
#include <string>

namespace camp {

/** Status-style error codes, one per exception type. */
enum class ErrorCode
{
    Ok = 0,
    InvalidArgument,   ///< caller passed an out-of-contract value
    ConfigError,       ///< configuration cannot describe buildable hardware
    HardwareFault,     ///< the (simulated) datapath produced a wrong result
    ResourceExhausted, ///< a bounded budget (retries, capacity) ran out
};

inline const char*
error_code_name(ErrorCode code)
{
    switch (code) {
    case ErrorCode::Ok: return "Ok";
    case ErrorCode::InvalidArgument: return "InvalidArgument";
    case ErrorCode::ConfigError: return "ConfigError";
    case ErrorCode::HardwareFault: return "HardwareFault";
    case ErrorCode::ResourceExhausted: return "ResourceExhausted";
    }
    return "Unknown";
}

/** Base of the typed runtime errors (everything except InvalidArgument). */
class Error : public std::runtime_error
{
  public:
    Error(ErrorCode code, const std::string& what)
        : std::runtime_error(what), code_(code)
    {
    }

    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
};

/**
 * Caller error. Derives std::invalid_argument (not Error) so existing
 * catch sites for the documented throw type keep working.
 */
class InvalidArgument : public std::invalid_argument
{
  public:
    explicit InvalidArgument(const std::string& what)
        : std::invalid_argument(what)
    {
    }

    ErrorCode code() const { return ErrorCode::InvalidArgument; }
};

/** A SimConfig that cannot describe buildable hardware. */
class ConfigError : public Error
{
  public:
    explicit ConfigError(const std::string& what)
        : Error(ErrorCode::ConfigError, what)
    {
    }
};

/** The simulated datapath returned a result that fails validation. */
class HardwareFault : public Error
{
  public:
    explicit HardwareFault(const std::string& what)
        : Error(ErrorCode::HardwareFault, what)
    {
    }
};

/** A bounded budget (retry count, capacity) was exhausted. */
class ResourceExhausted : public Error
{
  public:
    explicit ResourceExhausted(const std::string& what)
        : Error(ErrorCode::ResourceExhausted, what)
    {
    }
};

} // namespace camp

#endif // CAMP_SUPPORT_ERRORS_HPP
