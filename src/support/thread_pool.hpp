/**
 * @file
 * Work-stealing thread pool and TLS scratch arena for the hot
 * multiplication recursion (ROADMAP: "as fast as the hardware allows").
 *
 * The pool runs a fixed set of workers (CAMP_THREADS env, default
 * hardware_threads()); CAMP_THREADS=1 means zero workers and every
 * TaskGroup::run() executes inline, which is the exact serial code
 * path. Fork/join is expressed with TaskGroup: a task may itself open
 * a TaskGroup and wait() on it without deadlocking, because wait()
 * *helps* — it pops and executes pool tasks until the group drains —
 * so every blocked join converts into useful work (the classic
 * help-first work-stealing join).
 *
 * Determinism contract: the pool never changes *what* is computed,
 * only *where*. Callers must give each task a disjoint output region
 * and combine results after wait() in program order; under that
 * discipline an N-thread run is bit-identical to CAMP_THREADS=1
 * (tests/test_mpn_mul.cpp fuzzes exactly this).
 */
#ifndef CAMP_SUPPORT_THREAD_POOL_HPP
#define CAMP_SUPPORT_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace camp::support {

/** std::thread::hardware_concurrency() clamped to >= 1. */
unsigned hardware_threads();

/**
 * Worker-thread budget from the environment: CAMP_THREADS if set and
 * >= 1, otherwise hardware_threads(). This is the *total* executor
 * count including the thread that calls wait() (which helps), so the
 * global pool spawns one fewer worker.
 */
unsigned env_thread_count();

class TaskGroup;

/** Fixed-size work-stealing pool; see file comment for the model. */
class ThreadPool
{
  public:
    /** @p executors total executors; spawns executors - 1 workers. */
    explicit ThreadPool(unsigned executors);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Process-wide pool sized by env_thread_count(); never destroyed
     * before exit so TLS worker state stays valid. */
    static ThreadPool& global();

    /** Worker threads owned by the pool (0 => fully serial). */
    unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

    /** Total executors: workers plus the helping submitter. */
    unsigned executors() const { return workers() + 1; }

    /** True when TaskGroup::run() may actually fork. */
    bool parallel() const { return workers() > 0; }

  private:
    friend class TaskGroup;

    struct Task
    {
        std::function<void()> fn;
        TaskGroup* group = nullptr;
    };

    /** One mutex-guarded deque per worker plus an injection queue for
     * external submitters; owners pop LIFO, thieves steal FIFO. */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void submit(Task task);
    bool try_run_one(int self);
    static void execute(Task& task);
    void worker_loop(unsigned index);

    std::vector<std::unique_ptr<WorkerQueue>> queues_; ///< [workers]
    WorkerQueue inject_;                               ///< external submits
    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
    std::atomic<bool> stop_{false};
    std::vector<std::thread> threads_;
};

/**
 * Fork/join scope: run() submits (or executes inline on a serial
 * pool), wait() helps until every submitted task finished and
 * rethrows the first captured exception. The destructor waits too, so
 * a group can never outlive its tasks' captured references.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool& pool = ThreadPool::global())
        : pool_(pool)
    {
    }

    /** Drains remaining tasks; a pending task exception is dropped
     * here (call wait() to observe it). */
    ~TaskGroup() { drain(); }

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /** Submit @p fn; executes inline when the pool has no workers. */
    void run(std::function<void()> fn);

    /** Help-execute pool tasks until every run() task of this group
     * completed; rethrows the first task exception. */
    void wait();

  private:
    friend class ThreadPool;

    void drain();
    void task_done(std::exception_ptr error);

    ThreadPool& pool_;
    std::atomic<std::uint64_t> pending_{0};
    std::mutex done_mutex_;
    std::condition_variable done_cv_;
    std::exception_ptr first_error_;
};

/**
 * Thread-local bump allocator for the multiplication recursion's
 * temporaries. ScratchFrame marks/releases LIFO; blocks are cached
 * for the lifetime of the thread, so steady-state hot paths allocate
 * nothing from the system. Pointers stay valid until the owning frame
 * unwinds (blocks are chained, never reallocated).
 *
 * Since the memory-plane refactor (DESIGN.md §14) the bump blocks come
 * from LimbArena::global() rather than the system allocator, so scratch
 * shows up in the shared `arena.*` accounting and dead threads hand
 * their blocks back to the process-wide pool.
 */
class ScratchArena
{
  public:
    /** The calling thread's arena. */
    static ScratchArena& tls();

    /** Returns every cached block to LimbArena::global(). */
    ~ScratchArena();

    /** Bump-allocate @p n 64-bit words (uninitialized). */
    std::uint64_t* alloc(std::size_t n);

    /** Most words ever simultaneously live in this thread's arena
     * (block tails wasted by oversize requests included). The global
     * cross-thread maximum is the "mpn.scratch.high_water_words"
     * gauge. */
    std::size_t high_water_words() const { return high_water_words_; }

  private:
    friend class ScratchFrame;

    struct Mark
    {
        std::size_t block;
        std::size_t used;
    };

    Mark mark() const { return {block_, used_}; }
    void release(Mark m);
    ScratchArena() = default;

    static constexpr std::size_t kFirstBlockWords = 1 << 12;

    struct Block
    {
        std::uint64_t* words = nullptr; ///< owned by LimbArena::global()
        std::size_t capacity = 0;
    };

    std::vector<Block> blocks_;
    std::size_t block_ = 0; ///< current block index
    std::size_t used_ = 0;  ///< words used in current block
    std::size_t high_water_words_ = 0;
};

/** RAII LIFO frame over the calling thread's scratch arena. */
class ScratchFrame
{
  public:
    ScratchFrame() : arena_(ScratchArena::tls()), mark_(arena_.mark()) {}
    ~ScratchFrame() { arena_.release(mark_); }

    ScratchFrame(const ScratchFrame&) = delete;
    ScratchFrame& operator=(const ScratchFrame&) = delete;

    /** Words live until this frame unwinds. */
    std::uint64_t* alloc(std::size_t n) { return arena_.alloc(n); }

  private:
    ScratchArena& arena_;
    ScratchArena::Mark mark_;
};

/**
 * RAII region that disables pool forking on the calling thread (and,
 * because fork decisions happen before any task is spawned, on the
 * whole recursion below it). Tests use this to get the exact serial
 * result in-process for parallel-equals-serial comparisons.
 */
class SerialGuard
{
  public:
    SerialGuard();
    ~SerialGuard();
    SerialGuard(const SerialGuard&) = delete;
    SerialGuard& operator=(const SerialGuard&) = delete;
};

/** False inside a SerialGuard on this thread. */
bool parallel_allowed();

} // namespace camp::support

#endif // CAMP_SUPPORT_THREAD_POOL_HPP
