/**
 * @file
 * Least-squares fitting used to recover empirical complexity exponents
 * (Table I reproduction): fit time = c * n^k via log-log regression.
 */
#ifndef CAMP_SUPPORT_REGRESSION_HPP
#define CAMP_SUPPORT_REGRESSION_HPP

#include <cmath>
#include <cstddef>
#include <vector>

#include "support/assert.hpp"

namespace camp {

/** Result of a simple linear regression y = intercept + slope * x. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    double r2 = 0.0;
};

/** Ordinary least squares on (x, y) pairs. */
inline LinearFit
linear_fit(const std::vector<double>& xs, const std::vector<double>& ys)
{
    CAMP_ASSERT(xs.size() == ys.size() && xs.size() >= 2);
    const double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }
    LinearFit fit;
    const double denom = n * sxx - sx * sx;
    CAMP_ASSERT(denom != 0.0);
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
    const double ss_tot = syy - sy * sy / n;
    double ss_res = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
        ss_res += e * e;
    }
    fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

/**
 * Fit time = c * n^k on positive data; returns {slope = k,
 * intercept = log(c), r2} from the log-log regression.
 */
inline LinearFit
power_law_fit(const std::vector<double>& ns, const std::vector<double>& ts)
{
    std::vector<double> lx(ns.size()), ly(ts.size());
    for (std::size_t i = 0; i < ns.size(); ++i) {
        CAMP_ASSERT(ns[i] > 0 && ts[i] > 0);
        lx[i] = std::log(ns[i]);
        ly[i] = std::log(ts[i]);
    }
    return linear_fit(lx, ly);
}

} // namespace camp

#endif // CAMP_SUPPORT_REGRESSION_HPP
