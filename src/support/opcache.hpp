/**
 * @file
 * Operand-digest inverse cache (ROADMAP item 4): a sharded,
 * thread-safe, byte-budgeted LRU of expensive derived constants keyed
 * by (semantic tag, operand digest). ARCHITECT observes that iterative
 * arbitrary-precision compute touches few high-order digits between
 * iterations; at the runtime layer that shows up as *repeated
 * operands* — the same RSA modulus across a session of modexps, the
 * same divisor across a burst of divisions, the same operand pair
 * resubmitted to the serving front-end. This cache lets those repeats
 * skip the expensive derivation (Newton reciprocals, Montgomery
 * constants, whole products at the serving edge) instead of
 * recomputing it.
 *
 * Correctness contract — a hit must NEVER change a result:
 *  - The digest (FNV-1a over the full key material) only selects a
 *    bucket. Every hit re-compares the *entire* key material limb by
 *    limb before the value is used; a digest collision is counted
 *    (opcache.collisions) and treated as a miss for the colliding key,
 *    which is stored alongside under the same digest.
 *  - Cached payloads are immutable post-insert: the cache hands out
 *    shared_ptr<const OpValue> and every hit re-verifies an FNV
 *    checksum taken at insert time. A payload that was mutated behind
 *    the cache's back (the stale-view / aliasing bug class PR-8's
 *    poisoning discipline targets) throws camp::Error(Internal)
 *    instead of silently serving a corrupt constant. Call sites copy
 *    limbs out of the payload (copy-on-return), so no caller ever
 *    holds a mutable view of cached storage.
 *  - Values cached here are *exact* derived constants (floor
 *    reciprocals, Montgomery R/R^2/n0inv, exact products), so
 *    cache-on and cache-off runs are bit-identical by construction;
 *    tests/test_opcache.cpp fuzzes that differentially.
 *
 * Budget: eviction is strict LRU per shard with the global
 * CAMP_OPCACHE_BYTES budget split evenly across shards (a shard never
 * holds more than budget/shards bytes). CAMP_OPCACHE=0 disables every
 * lookup and insert (the cold path: one relaxed load per call).
 *
 * Metrics: <prefix>.{hits,misses,evictions,inserts,collisions} counters
 * and a <prefix>.bytes gauge ("opcache" for the global instance,
 * "opcache.serve" for the serving layer's product cache).
 */
#ifndef CAMP_SUPPORT_OPCACHE_HPP
#define CAMP_SUPPORT_OPCACHE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace camp::support {

/** Semantic tag of a cached constant; part of the key. */
enum class OpTag : std::uint64_t
{
    Reciprocal = 1, ///< floor(2^(bits(d)+extra) / d), mpn/newton.cpp
    Montgomery = 2, ///< n0inv, R mod n, R^2 mod n, mpn/mont.cpp
    Product = 3,    ///< exact a*b, serving-layer repeat traffic
    Test = 99,      ///< reserved for unit tests (forced collisions)
};

/**
 * Cache key: the digest routes to a bucket, the material decides. The
 * material must encode *everything* the cached value depends on
 * (operand limbs plus scalar parameters); make_key computes the
 * digest, but tests may set it directly to force collisions.
 */
struct OpKey
{
    std::uint64_t tag = 0;
    std::uint64_t digest = 0;
    std::vector<std::uint64_t> material;

    std::size_t bytes() const
    {
        return material.size() * sizeof(std::uint64_t) +
               2 * sizeof(std::uint64_t);
    }
};

/** FNV-1a over 64-bit words (same family as the scheduler's
 * sticky-session operand digest). */
std::uint64_t fnv1a_words(const std::uint64_t* words, std::size_t n,
                          std::uint64_t seed = 1469598103934665603ULL);

/** Build a key over @p material for @p tag (digest filled in). */
OpKey make_key(OpTag tag, std::vector<std::uint64_t> material);

/**
 * Cached payload: limb vectors plus small scalars. Immutable once
 * inserted (enforced by constness plus the insert-time checksum).
 */
struct OpValue
{
    std::vector<std::vector<std::uint64_t>> parts;
    std::vector<std::uint64_t> scalars;

    std::size_t
    bytes() const
    {
        std::size_t total = scalars.size() * sizeof(std::uint64_t);
        for (const auto& part : parts)
            total += part.size() * sizeof(std::uint64_t) +
                     sizeof(std::uint64_t);
        return total;
    }
};

/** Point-in-time counters of one cache instance. */
struct OpCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t inserts = 0;
    std::uint64_t collisions = 0; ///< digest matched, material did not
    std::uint64_t bytes = 0;
    std::uint64_t entries = 0;
};

class OpCache
{
  public:
    /**
     * @p max_bytes total budget (split across @p shards);
     * @p metrics_prefix names the registry counters; @p enabled off
     * turns lookup/insert into no-ops (the differential "cache-off"
     * arm).
     */
    explicit OpCache(std::size_t max_bytes, bool enabled = true,
                     unsigned shards = 8,
                     std::string metrics_prefix = "opcache");
    ~OpCache();

    OpCache(const OpCache&) = delete;
    OpCache& operator=(const OpCache&) = delete;

    /**
     * The verified value for @p key, or nullptr on miss / disabled
     * cache. A hit compares the full key material and re-verifies the
     * payload checksum (camp::Error(Internal) on mutation). Refreshes
     * LRU position.
     */
    std::shared_ptr<const OpValue> lookup(const OpKey& key);

    /**
     * Insert (or replace) the value for @p key. Entries whose key
     * material matches are replaced in place; colliding digests with
     * different material coexist. Evicts LRU entries of the shard
     * until the shard budget holds. Oversized values (bigger than a
     * whole shard's budget) are not cached. No-op when disabled.
     */
    void insert(const OpKey& key, OpValue value);

    /** Drop every entry (stats counters are kept). */
    void clear();

    /** Aggregate counters across shards. */
    OpCacheStats stats() const;

    bool enabled() const;

    /** Toggle at runtime (tests and differential benches); does not
     * drop entries — pair with clear() for a cold restart. */
    void set_enabled(bool on);

    std::size_t max_bytes() const;

    /**
     * The process-wide instance used by the mpn/mpz layers,
     * constructed on first use from CAMP_OPCACHE (default on) and
     * CAMP_OPCACHE_BYTES (default 32 MiB), metrics prefix "opcache".
     */
    static OpCache& global();

    /** CAMP_OPCACHE as parsed for the global instance (and the
     * default for layers with their own enable knob). */
    static bool env_enabled();

    /** CAMP_OPCACHE_BYTES as parsed for the global instance. */
    static std::size_t env_max_bytes();

  private:
    struct Shard;
    struct Impl;

    /** Evict LRU entries until @p shard is within its budget; the
     * shard's mutex must be held. */
    void evict_locked(Shard& shard);

    std::unique_ptr<Impl> impl_;
};

} // namespace camp::support

#endif // CAMP_SUPPORT_OPCACHE_HPP
