/**
 * @file
 * The Clock abstraction the serving stack is plumbed through
 * (DESIGN.md §15). Every time-bearing quantity above the exec plane —
 * deadlines, retry backoff, retry-after hints, breaker quarantine
 * durations — is expressed in Clock::duration and read through a Clock
 * so the same decision code runs against two sources of time:
 *
 *  - VirtualClock: the deterministic serving engine's ledger. It only
 *    moves when the engine advances it (advance_to_us), so a run is a
 *    pure function of (config, workload, device config) — the replay
 *    and differential-oracle contract of serve::Server.
 *  - WallClock: std::chrono::steady_clock, microseconds since the
 *    clock's construction. advance_to_us is a no-op (wall time cannot
 *    be steered); now_us genuinely moves between calls.
 *
 * The serving engine *decides* on the virtual ledger in both modes;
 * a WallClock only contributes observability timestamps (per-request
 * wall-vs-virtual completion skew, breaker open durations). That is
 * what keeps the wall-clock async server bit-identical to the virtual
 * oracle.
 */
#ifndef CAMP_SUPPORT_CLOCK_HPP
#define CAMP_SUPPORT_CLOCK_HPP

#include <chrono>
#include <cstdint>

namespace camp::support {

class Clock
{
  public:
    /** The one time unit of the serving stack. Typed APIs above the
     * exec plane carry Clock::duration, never raw integers, so a
     * wall-clock server cannot misread a virtual quantity. */
    using duration = std::chrono::microseconds;

    virtual ~Clock() = default;

    /** Microseconds since this clock's epoch (construction for a
     * WallClock; 0 for a fresh VirtualClock). */
    virtual std::uint64_t now_us() const = 0;

    /** Advance a steerable clock to @p when_us (monotone: earlier
     * stamps are ignored). Wall clocks ignore this entirely. */
    virtual void advance_to_us(std::uint64_t when_us) = 0;

    /** True when time only moves via advance_to_us. */
    virtual bool is_virtual() const = 0;

    duration now() const { return duration(now_us()); }
};

/** The deterministic engine clock: holds still until advanced. */
class VirtualClock final : public Clock
{
  public:
    std::uint64_t now_us() const override { return now_us_; }

    void advance_to_us(std::uint64_t when_us) override
    {
        if (when_us > now_us_)
            now_us_ = when_us;
    }

    bool is_virtual() const override { return true; }

  private:
    std::uint64_t now_us_ = 0;
};

/** Monotonic real time, microseconds since construction. */
class WallClock final : public Clock
{
  public:
    WallClock() : epoch_(std::chrono::steady_clock::now()) {}

    std::uint64_t now_us() const override
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    void advance_to_us(std::uint64_t) override {}

    bool is_virtual() const override { return false; }

  private:
    std::chrono::steady_clock::time_point epoch_;
};

} // namespace camp::support

#endif // CAMP_SUPPORT_CLOCK_HPP
