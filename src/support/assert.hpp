/**
 * @file
 * Always-on invariant checking.
 *
 * Follows the gem5 panic/fatal distinction:
 *  - CAMP_ASSERT fires on internal invariant violations (library bugs) and
 *    aborts, like gem5's panic().
 *  - Caller errors (bad arguments) are reported by throwing
 *    std::invalid_argument from the public API, like gem5's fatal().
 */
#ifndef CAMP_SUPPORT_ASSERT_HPP
#define CAMP_SUPPORT_ASSERT_HPP

#include <cstdio>
#include <cstdlib>

namespace camp {

[[noreturn]] inline void
assert_fail(const char* expr, const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "CAMP_ASSERT failed: %s\n  at %s:%d\n  %s\n",
                 expr, file, line, msg ? msg : "");
    std::abort();
}

} // namespace camp

/** Always-on invariant check; aborts with location on failure. */
#define CAMP_ASSERT(expr)                                                     \
    ((expr) ? (void)0                                                         \
            : ::camp::assert_fail(#expr, __FILE__, __LINE__, nullptr))

/** Invariant check with an explanatory message. */
#define CAMP_ASSERT_MSG(expr, msg)                                            \
    ((expr) ? (void)0 : ::camp::assert_fail(#expr, __FILE__, __LINE__, (msg)))

#endif // CAMP_SUPPORT_ASSERT_HPP
