/**
 * @file
 * Operator profiler reproducing the paper's Figure 2 methodology: wall
 * time is attributed exclusively to the innermost active category, with
 * kernel operators (Multiply / Add / Shift) separated from other
 * low-level operators, high-level processing, and auxiliary work.
 * It also aggregates an operation histogram (kind x size bucket) that
 * the batch-oriented GPU cost model replays.
 *
 * Thread policy (work-stealing pool integration): time and call
 * counters are atomic buckets merged on the fly, while the exclusive
 * -attribution stack is thread-local — each thread attributes its own
 * elapsed slices to its own innermost category. The thread that
 * started the session (reset()) is the *primary* thread and owns the
 * HighLevel default bucket; other threads only contribute while
 * inside at least one explicit category, so pool-worker idle time is
 * never misattributed as HighLevel. The histogram takes a small
 * mutex per operation. Hooks themselves still register/unregister on
 * the primary thread only, outside parallel regions (ophook.hpp).
 */
#ifndef CAMP_PROFILE_PROFILER_HPP
#define CAMP_PROFILE_PROFILER_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "mpn/ophook.hpp"

namespace camp::profile {

/** Figure 2 categories. */
enum class Category
{
    KernelMul,     ///< Multiply (includes squaring)
    KernelAdd,     ///< Add / Sub
    KernelShift,   ///< bit shifts
    LowLevelOther, ///< division, sqrt, gcd, ...
    HighLevel,     ///< sign/exponent/float management (default bucket)
    Auxiliary,     ///< memory management, I/O, string conversion
};

inline constexpr int kNumCategories = 6;

/** Category display name. */
const char* category_name(Category c);

/** Category a kernel OpKind belongs to. */
Category category_of(mpn::OpKind kind);

/** Aggregated per-(kind, size-bucket) operation counts. */
struct OpBucket
{
    std::uint64_t count = 0;
    double sum_bits_a = 0; ///< to recover mean operand size
    double sum_bits_b = 0;
};

/**
 * Exclusive-time profiler. Install on the mpn hook list with
 * ProfileSession; annotate app phases with CategoryScope.
 */
class Profiler : public mpn::OpHook
{
  public:
    static Profiler& instance();

    void reset();

    /** Exclusive seconds attributed to @p c so far. */
    double seconds(Category c) const;

    /** Total profiled seconds across all categories. */
    double total_seconds() const;

    /** Calls observed per category. */
    std::uint64_t calls(Category c) const;

    /** Operation histogram: key = (kind, floor(log2(bits_a))). Only
     * read this outside parallel regions (no lock is held). */
    const std::map<std::pair<mpn::OpKind, unsigned>, OpBucket>&
    histogram() const
    {
        return histogram_;
    }

    /** Render the Fig. 2 (right) style breakdown table. */
    std::string breakdown_table(const std::string& label) const;

    // OpHook interface (kernel ops from Natural).
    void on_enter(mpn::OpKind kind, std::uint64_t bits_a,
                  std::uint64_t bits_b) override;
    void on_exit(mpn::OpKind kind) override;

    /** Push/pop an explicit category (for HighLevel/Auxiliary phases). */
    void push_category(Category c);
    void pop_category();

  private:
    Profiler() = default;

    static constexpr int kMaxDepth = 64;

    /** Per-thread exclusive-attribution stack, lazily re-zeroed when
     * the session generation moves on. */
    struct TlsState
    {
        std::uint64_t session = 0;
        int depth = 0;
        std::array<Category, kMaxDepth> stack{};
        double last_stamp = 0;
    };

    TlsState& tls();
    void switch_to(TlsState& t, int stack_top);

    std::array<std::atomic<std::int64_t>, kNumCategories> nanos_{};
    std::array<std::atomic<std::uint64_t>, kNumCategories> calls_{};
    std::atomic<std::uint64_t> session_{1};
    std::atomic<std::size_t> primary_thread_{0}; ///< hashed thread id
    std::mutex histogram_mutex_;
    std::map<std::pair<mpn::OpKind, unsigned>, OpBucket> histogram_;
};

/** RAII: register the profiler as an op hook for the current scope. */
class ProfileSession
{
  public:
    ProfileSession();
    ~ProfileSession();
    ProfileSession(const ProfileSession&) = delete;
    ProfileSession& operator=(const ProfileSession&) = delete;
};

/** RAII: attribute the enclosed work to an explicit category. */
class CategoryScope
{
  public:
    explicit CategoryScope(Category c)
    {
        Profiler::instance().push_category(c);
    }
    ~CategoryScope() { Profiler::instance().pop_category(); }
    CategoryScope(const CategoryScope&) = delete;
    CategoryScope& operator=(const CategoryScope&) = delete;
};

/** Monotonic wall clock in seconds. */
double now_seconds();

} // namespace camp::profile

#endif // CAMP_PROFILE_PROFILER_HPP
