#include "profile/profiler.hpp"

#include <chrono>
#include <sstream>

#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/table.hpp"

namespace camp::profile {

double
now_seconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

const char*
category_name(Category c)
{
    switch (c) {
    case Category::KernelMul: return "Multiply";
    case Category::KernelAdd: return "Add/Sub";
    case Category::KernelShift: return "Shift";
    case Category::LowLevelOther: return "OtherLowLevel";
    case Category::HighLevel: return "HighLevel";
    case Category::Auxiliary: return "Auxiliary";
    }
    return "?";
}

Category
category_of(mpn::OpKind kind)
{
    using mpn::OpKind;
    switch (kind) {
    case OpKind::Mul:
    case OpKind::Sqr:
        return Category::KernelMul;
    case OpKind::Add:
    case OpKind::Sub:
        return Category::KernelAdd;
    case OpKind::Shift:
        return Category::KernelShift;
    default:
        return Category::LowLevelOther;
    }
}

Profiler&
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::reset()
{
    seconds_.fill(0);
    calls_.fill(0);
    depth_ = 0;
    last_stamp_ = now_seconds();
    histogram_.clear();
}

void
Profiler::switch_to(int new_depth)
{
    // Attribute the elapsed slice to the currently-innermost category
    // (HighLevel when the stack is empty), then move the stack top.
    const double now = now_seconds();
    const Category current =
        depth_ == 0 ? Category::HighLevel : stack_[depth_ - 1];
    seconds_[static_cast<int>(current)] += now - last_stamp_;
    last_stamp_ = now;
    depth_ = new_depth;
}

void
Profiler::push_category(Category c)
{
    CAMP_ASSERT(depth_ < kMaxDepth);
    switch_to(depth_ + 1);
    stack_[depth_ - 1] = c;
    calls_[static_cast<int>(c)] += 1;
}

void
Profiler::pop_category()
{
    CAMP_ASSERT(depth_ > 0);
    switch_to(depth_ - 1);
}

void
Profiler::on_enter(mpn::OpKind kind, std::uint64_t bits_a,
                   std::uint64_t bits_b)
{
    push_category(category_of(kind));
    const unsigned bucket =
        bits_a == 0 ? 0 : static_cast<unsigned>(floor_log2(bits_a));
    OpBucket& b = histogram_[{kind, bucket}];
    b.count += 1;
    b.sum_bits_a += static_cast<double>(bits_a);
    b.sum_bits_b += static_cast<double>(bits_b);
}

void
Profiler::on_exit(mpn::OpKind)
{
    pop_category();
}

double
Profiler::seconds(Category c) const
{
    return seconds_[static_cast<int>(c)];
}

std::uint64_t
Profiler::calls(Category c) const
{
    return calls_[static_cast<int>(c)];
}

double
Profiler::total_seconds() const
{
    double total = 0;
    for (const double s : seconds_)
        total += s;
    return total;
}

std::string
Profiler::breakdown_table(const std::string& label) const
{
    Table table({"category", "seconds", "share", "calls"});
    const double total = total_seconds();
    for (int i = 0; i < kNumCategories; ++i) {
        const auto c = static_cast<Category>(i);
        char share[32];
        std::snprintf(share, sizeof(share), "%5.1f%%",
                      total > 0 ? 100.0 * seconds(c) / total : 0.0);
        table.add_row({category_name(c), Table::fmt(seconds(c)), share,
                       std::to_string(calls(c))});
    }
    std::ostringstream out;
    out << "== runtime breakdown: " << label << " ==\n"
        << table.to_string();
    return out.str();
}

ProfileSession::ProfileSession()
{
    Profiler::instance().reset();
    mpn::add_op_hook(&Profiler::instance());
}

ProfileSession::~ProfileSession()
{
    mpn::remove_op_hook(&Profiler::instance());
}

} // namespace camp::profile
