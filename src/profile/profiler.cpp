#include "profile/profiler.hpp"

#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/table.hpp"

namespace camp::profile {

double
now_seconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

const char*
category_name(Category c)
{
    switch (c) {
    case Category::KernelMul: return "Multiply";
    case Category::KernelAdd: return "Add/Sub";
    case Category::KernelShift: return "Shift";
    case Category::LowLevelOther: return "OtherLowLevel";
    case Category::HighLevel: return "HighLevel";
    case Category::Auxiliary: return "Auxiliary";
    }
    return "?";
}

Category
category_of(mpn::OpKind kind)
{
    using mpn::OpKind;
    switch (kind) {
    case OpKind::Mul:
    case OpKind::Sqr:
        return Category::KernelMul;
    case OpKind::Add:
    case OpKind::Sub:
        return Category::KernelAdd;
    case OpKind::Shift:
        return Category::KernelShift;
    default:
        return Category::LowLevelOther;
    }
}

Profiler&
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

namespace {

std::size_t
thread_hash()
{
    return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

} // namespace

void
Profiler::reset()
{
    session_.fetch_add(1, std::memory_order_acq_rel);
    primary_thread_.store(thread_hash(), std::memory_order_release);
    for (auto& n : nanos_)
        n.store(0, std::memory_order_relaxed);
    for (auto& c : calls_)
        c.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(histogram_mutex_);
    histogram_.clear();
}

Profiler::TlsState&
Profiler::tls()
{
    static thread_local TlsState state;
    const std::uint64_t session =
        session_.load(std::memory_order_acquire);
    if (state.session != session) {
        state = TlsState{};
        state.session = session;
        state.last_stamp = now_seconds();
    }
    return state;
}

void
Profiler::switch_to(TlsState& t, int new_depth)
{
    // Attribute the elapsed slice to this thread's innermost category.
    // With an empty stack only the primary thread attributes (to
    // HighLevel); a pool worker's between-tasks time belongs to nobody.
    const double now = now_seconds();
    const bool primary = primary_thread_.load(
                             std::memory_order_acquire) == thread_hash();
    if (t.depth > 0 || primary) {
        const Category current =
            t.depth == 0 ? Category::HighLevel : t.stack[t.depth - 1];
        nanos_[static_cast<int>(current)].fetch_add(
            std::llround((now - t.last_stamp) * 1e9),
            std::memory_order_relaxed);
    }
    t.last_stamp = now;
    t.depth = new_depth;
}

void
Profiler::push_category(Category c)
{
    TlsState& t = tls();
    CAMP_ASSERT(t.depth < kMaxDepth);
    switch_to(t, t.depth + 1);
    t.stack[t.depth - 1] = c;
    calls_[static_cast<int>(c)].fetch_add(1, std::memory_order_relaxed);
}

void
Profiler::pop_category()
{
    TlsState& t = tls();
    CAMP_ASSERT(t.depth > 0);
    switch_to(t, t.depth - 1);
}

void
Profiler::on_enter(mpn::OpKind kind, std::uint64_t bits_a,
                   std::uint64_t bits_b)
{
    push_category(category_of(kind));
    const unsigned bucket =
        bits_a == 0 ? 0 : static_cast<unsigned>(floor_log2(bits_a));
    std::lock_guard<std::mutex> lock(histogram_mutex_);
    OpBucket& b = histogram_[{kind, bucket}];
    b.count += 1;
    b.sum_bits_a += static_cast<double>(bits_a);
    b.sum_bits_b += static_cast<double>(bits_b);
}

void
Profiler::on_exit(mpn::OpKind)
{
    pop_category();
}

double
Profiler::seconds(Category c) const
{
    return static_cast<double>(nanos_[static_cast<int>(c)].load(
               std::memory_order_relaxed)) *
           1e-9;
}

std::uint64_t
Profiler::calls(Category c) const
{
    return calls_[static_cast<int>(c)].load(std::memory_order_relaxed);
}

double
Profiler::total_seconds() const
{
    double total = 0;
    for (int i = 0; i < kNumCategories; ++i)
        total += seconds(static_cast<Category>(i));
    return total;
}

std::string
Profiler::breakdown_table(const std::string& label) const
{
    Table table({"category", "seconds", "share", "calls"});
    const double total = total_seconds();
    for (int i = 0; i < kNumCategories; ++i) {
        const auto c = static_cast<Category>(i);
        char share[32];
        std::snprintf(share, sizeof(share), "%5.1f%%",
                      total > 0 ? 100.0 * seconds(c) / total : 0.0);
        table.add_row({category_name(c), Table::fmt(seconds(c)), share,
                       std::to_string(calls(c))});
    }
    std::ostringstream out;
    out << "== runtime breakdown: " << label << " ==\n"
        << table.to_string();
    return out.str();
}

ProfileSession::ProfileSession()
{
    Profiler::instance().reset();
    mpn::add_op_hook(&Profiler::instance());
}

ProfileSession::~ProfileSession()
{
    mpn::remove_op_hook(&Profiler::instance());
}

} // namespace camp::profile
