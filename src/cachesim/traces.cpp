#include "cachesim/traces.hpp"

#include "support/bits.hpp"
#include "support/rng.hpp"

namespace camp::cachesim {

namespace {

/** Bump allocator mirroring temporary-buffer allocation in mpn code. */
class Arena
{
  public:
    explicit Arena(std::uint64_t base) : top_(base) {}

    std::uint64_t
    alloc(std::size_t limbs)
    {
        const std::uint64_t p = top_;
        top_ += limbs * 8;
        return p;
    }

    std::uint64_t mark() const { return top_; }
    void release(std::uint64_t mark) { top_ = mark; }

  private:
    std::uint64_t top_;
};

struct MulTracer
{
    Hierarchy& h;
    Arena arena;
    double ops = 0;

    static constexpr std::size_t kKaratsubaThreshold = 24;

    void
    touch(std::uint64_t addr)
    {
        h.access(addr, 8);
    }

    /** Schoolbook: bn passes of mul_1/addmul_1 over an limbs. */
    void
    schoolbook(std::uint64_t a, std::size_t an, std::uint64_t b,
               std::size_t bn, std::uint64_t r)
    {
        for (std::size_t j = 0; j < bn; ++j) {
            touch(b + 8 * j);
            for (std::size_t i = 0; i < an; ++i) {
                touch(a + 8 * i);
                touch(r + 8 * (i + j)); // read-modify-write accumulator
                ops += 1;               // one 64x64 MAC
            }
        }
    }

    /** Karatsuba recursion with scratch in the arena. */
    void
    karatsuba(std::uint64_t a, std::uint64_t b, std::size_t n,
              std::uint64_t r)
    {
        if (n <= kKaratsubaThreshold) {
            schoolbook(a, n, b, n, r);
            return;
        }
        const std::size_t m = n / 2;
        const std::uint64_t saved = arena.mark();
        const std::uint64_t sa = arena.alloc(n - m + 1);
        const std::uint64_t sb = arena.alloc(n - m + 1);
        const std::uint64_t t = arena.alloc(2 * (n - m + 1));
        // Evaluation adds: sa = a0 + a1, sb = b0 + b1.
        for (std::size_t i = 0; i < n - m; ++i) {
            touch(a + 8 * i);
            touch(a + 8 * (m + i));
            touch(sa + 8 * i);
            touch(b + 8 * i);
            touch(b + 8 * (m + i));
            touch(sb + 8 * i);
            ops += 0.25; // adds are cheap next to MACs
        }
        karatsuba(a, b, m, r);
        karatsuba(a + 8 * m, b + 8 * m, n - m, r + 16 * m);
        karatsuba(sa, sb, n - m + 1, t);
        // Interpolation passes: t -= z0, t -= z2, r += t << m.
        for (std::size_t i = 0; i < 2 * (n - m + 1); ++i) {
            touch(t + 8 * i);
            touch(r + 8 * (m + i));
            ops += 0.25;
        }
        arena.release(saved);
    }
};

} // namespace

TraceResult
trace_apc_mul(Hierarchy& hierarchy, std::size_t limbs)
{
    // Operand/result placement mimics heap layout: disjoint regions.
    const std::uint64_t a = 0x10000000;
    const std::uint64_t b = a + limbs * 8 + 4096;
    const std::uint64_t r = b + limbs * 8 + 4096;
    MulTracer tracer{hierarchy, Arena(r + 2 * limbs * 8 + 4096)};
    tracer.karatsuba(a, b, limbs, r);
    return {tracer.ops, "mac64"};
}

TraceResult
trace_matmul(Hierarchy& hierarchy, std::size_t n)
{
    const std::uint64_t A = 0x20000000;
    const std::uint64_t B = A + n * n * 4 + 4096;
    const std::uint64_t C = B + n * n * 4 + 4096;
    double ops = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t k = 0; k < n; ++k) {
                hierarchy.access(A + 4 * (i * n + k), 4);
                hierarchy.access(B + 4 * (k * n + j), 4);
                ops += 1; // fmadd
            }
            hierarchy.access(C + 4 * (i * n + j), 4);
        }
    }
    return {ops, "fmadd32"};
}

TraceResult
trace_random_access(Hierarchy& hierarchy, std::size_t n,
                    std::uint64_t seed)
{
    Rng rng(seed);
    const std::uint64_t base = 0x40000000;
    const std::uint64_t count =
        static_cast<std::uint64_t>(n) *
        static_cast<std::uint64_t>(ceil_log2(n));
    for (std::uint64_t i = 0; i < count; ++i)
        hierarchy.access(base + 8 * rng.below(n), 8);
    return {static_cast<double>(count), "load64"};
}

} // namespace camp::cachesim
