/**
 * @file
 * Memory-trace generators for the three Figure 3 workloads: APC
 * multiplication (fine-grained limb decomposition), dense matrix
 * multiplication, and random access. Each generator drives a Hierarchy
 * and reports the arithmetic-operation count so bandwidth utilization
 * and operational intensity can be derived.
 */
#ifndef CAMP_CACHESIM_TRACES_HPP
#define CAMP_CACHESIM_TRACES_HPP

#include <cstdint>

#include "cachesim/cache.hpp"

namespace camp::cachesim {

/** Result of replaying one workload trace. */
struct TraceResult
{
    double ops = 0;          ///< arithmetic operations performed
    const char* op_unit = ""; ///< e.g. "imul64", "fmadd32"
};

/**
 * GMP-style multiplication of two n-limb operands: Karatsuba recursion
 * down to schoolbook base cases, with scratch buffers bump-allocated the
 * way the real library allocates temporaries. Every limb touched is one
 * 8-byte access.
 */
TraceResult trace_apc_mul(Hierarchy& hierarchy, std::size_t limbs);

/** Naive single-precision n x n matrix multiplication (row-major). */
TraceResult trace_matmul(Hierarchy& hierarchy, std::size_t n);

/** n*log2(n) uniform accesses over an n-element 8-byte array. */
TraceResult trace_random_access(Hierarchy& hierarchy, std::size_t n,
                                std::uint64_t seed = 42);

} // namespace camp::cachesim

#endif // CAMP_CACHESIM_TRACES_HPP
