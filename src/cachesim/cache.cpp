#include "cachesim/cache.hpp"

#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/metrics.hpp"

namespace camp::cachesim {

CacheLevel::CacheLevel(const LevelConfig& config) : config_(config)
{
    CAMP_ASSERT(config.line_bytes >= 8 &&
                (config.line_bytes & (config.line_bytes - 1)) == 0);
    CAMP_ASSERT(config.associativity >= 1);
    num_sets_ = config.size_bytes /
                (static_cast<std::uint64_t>(config.line_bytes) *
                 config.associativity);
    CAMP_ASSERT(num_sets_ >= 1 && (num_sets_ & (num_sets_ - 1)) == 0);
    line_shift_ = static_cast<unsigned>(floor_log2(config.line_bytes));
    ways_.resize(num_sets_ * config.associativity);
    namespace metrics = support::metrics;
    const std::string prefix = "cachesim." + config.name + ".";
    m_hits_ = &metrics::counter(prefix + "hits");
    m_misses_ = &metrics::counter(prefix + "misses");
    m_evictions_ = &metrics::counter(prefix + "evictions");
}

bool
CacheLevel::access(std::uint64_t addr)
{
    const std::uint64_t line = addr >> line_shift_;
    const std::size_t set =
        static_cast<std::size_t>(line & (num_sets_ - 1));
    const std::uint64_t tag = line >> floor_log2(num_sets_);
    Way* base = ways_.data() + set * config_.associativity;
    ++stamp_;
    Way* victim = base;
    for (unsigned w = 0; w < config_.associativity; ++w) {
        Way& way = base[w];
        if (way.valid && way.tag == tag) {
            way.lru = stamp_;
            ++hits_;
            m_hits_->add();
            return true;
        }
        if (!way.valid || way.lru < victim->lru ||
            (victim->valid && !way.valid))
            victim = &way;
    }
    if (victim->valid) {
        ++evictions_;
        m_evictions_->add();
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = stamp_;
    ++misses_;
    m_misses_->add();
    return false;
}

void
CacheLevel::reset_counters()
{
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

Hierarchy
Hierarchy::zen3_like()
{
    // Single-core slice of an AMD Zen3 (paper Figure 3a): capacities
    // from the Family-19h optimization guide; bandwidth capabilities
    // are per-core order-of-magnitude figures.
    return Hierarchy(
        {
            {"L1", 32 * 1024, 8, 64, 2000.0},
            {"L2", 512 * 1024, 8, 64, 1000.0},
            {"L3", 32ull * 1024 * 1024, 16, 64, 700.0},
        },
        // Scalar-path register-file bandwidth: ~3 accesses x 8 B per
        // cycle at ~3.9 GHz for the integer pipes GMP code uses.
        /*rf_bandwidth_gbps=*/280.0,
        /*dram_bandwidth_gbps=*/50.0);
}

Hierarchy::Hierarchy(std::vector<LevelConfig> levels,
                     double rf_bandwidth_gbps, double dram_bandwidth_gbps)
    : rf_bandwidth_gbps_(rf_bandwidth_gbps),
      dram_bandwidth_gbps_(dram_bandwidth_gbps)
{
    for (const auto& config : levels)
        levels_.emplace_back(config);
}

void
Hierarchy::access(std::uint64_t addr, unsigned bytes)
{
    ++accesses_;
    rf_bytes_ += bytes;
    for (auto& level : levels_) {
        if (level.access(addr))
            return; // hit: no traffic below this level
    }
}

std::vector<double>
Hierarchy::traffic_bytes() const
{
    std::vector<double> t;
    t.push_back(rf_bytes_);
    for (const auto& level : levels_) {
        // Fill traffic into this level = its misses * its line size.
        t.push_back(static_cast<double>(level.misses()) *
                    level.config().line_bytes);
    }
    return t;
}

std::vector<std::string>
Hierarchy::boundary_names() const
{
    std::vector<std::string> names{"RF"};
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        const std::string below = i + 1 < levels_.size()
                                      ? levels_[i + 1].config().name
                                      : "DRAM";
        names.push_back(levels_[i].config().name + "<-" + below);
    }
    return names;
}

std::vector<double>
Hierarchy::boundary_bandwidth_gbps() const
{
    std::vector<double> bw{rf_bandwidth_gbps_};
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        bw.push_back(i + 1 < levels_.size()
                         ? levels_[i + 1].config().bandwidth_gbps
                         : dram_bandwidth_gbps_);
    }
    return bw;
}

void
Hierarchy::reset()
{
    rf_bytes_ = 0;
    accesses_ = 0;
    for (auto& level : levels_)
        level.reset_counters();
}

} // namespace camp::cachesim
