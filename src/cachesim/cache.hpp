/**
 * @file
 * Multi-level set-associative cache hierarchy simulator with LRU
 * replacement and per-level traffic counters — the substrate behind the
 * paper's Figure 3 bandwidth-utilization and roofline analysis.
 */
#ifndef CAMP_CACHESIM_CACHE_HPP
#define CAMP_CACHESIM_CACHE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace camp::support::metrics {
class Counter;
}

namespace camp::cachesim {

/** Static description of one cache level. */
struct LevelConfig
{
    std::string name;
    std::uint64_t size_bytes;
    unsigned associativity;
    unsigned line_bytes;
    double bandwidth_gbps; ///< capability toward the core side (Fig 3a)
};

/** One set-associative LRU cache level. */
class CacheLevel
{
  public:
    explicit CacheLevel(const LevelConfig& config);

    /** Look up @p addr; allocates on miss. Returns hit. */
    bool access(std::uint64_t addr);

    const LevelConfig& config() const { return config_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    /** Misses that displaced a valid resident line. */
    std::uint64_t evictions() const { return evictions_; }

    void reset_counters();

  private:
    struct Way
    {
        std::uint64_t tag = ~0ull;
        std::uint64_t lru = 0; ///< last-use stamp
        bool valid = false;
    };

    LevelConfig config_;
    std::size_t num_sets_;
    unsigned line_shift_;
    std::vector<Way> ways_; ///< num_sets * associativity
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;

    // Registered-once global counters ("cachesim.<name>.hits" etc.);
    // registry-owned, so copies/moves of the level stay trivial.
    support::metrics::Counter* m_hits_ = nullptr;
    support::metrics::Counter* m_misses_ = nullptr;
    support::metrics::Counter* m_evictions_ = nullptr;
};

/**
 * Cache hierarchy: registers + L1/L2/L3 + DRAM. Traffic accounting
 * (bytes moved across each boundary) follows the standard inclusive
 * fill model: every access touches RF; L1 misses pull a line from L2,
 * and so on down to DRAM.
 */
class Hierarchy
{
  public:
    /** AMD-Zen3-like single-core hierarchy (paper Figure 3a). */
    static Hierarchy zen3_like();

    explicit Hierarchy(std::vector<LevelConfig> levels,
                       double rf_bandwidth_gbps,
                       double dram_bandwidth_gbps);

    /** One scalar access of @p bytes at @p addr. */
    void access(std::uint64_t addr, unsigned bytes);

    /** Bytes moved at each boundary: index 0 = RF<->core, then each
     * cache level's fill traffic, last = DRAM. */
    std::vector<double> traffic_bytes() const;

    /** Boundary names aligned with traffic_bytes(). */
    std::vector<std::string> boundary_names() const;

    /** Bandwidth capability per boundary (GB/s). */
    std::vector<double> boundary_bandwidth_gbps() const;

    std::uint64_t accesses() const { return accesses_; }

    void reset();

  private:
    std::vector<CacheLevel> levels_;
    double rf_bandwidth_gbps_;
    double dram_bandwidth_gbps_;
    double rf_bytes_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace camp::cachesim

#endif // CAMP_CACHESIM_CACHE_HPP
