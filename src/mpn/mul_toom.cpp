/**
 * @file
 * Generic Toom-k multiplication (k = 3, 4, 6) over the nonnegative
 * evaluation points {0, 1, ..., 2k-3, inf}.
 *
 * Interpolation uses integer forward differences: for a polynomial with
 * nonnegative integer coefficients, all forward differences at
 * nonnegative integer points are nonnegative, the falling-factorial
 * coefficients are Delta^j w(0) / j! (exact division), and the monomial
 * coefficients follow by the signed Stirling-number change of basis.
 * This keeps every intermediate a natural number, so the whole algorithm
 * runs on unsigned kernels with provably exact small divisions.
 */
#include <array>
#include <cstdint>
#include <vector>

#include "mpn/basic.hpp"
#include "mpn/mul.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace camp::mpn {

namespace {

/** rp = ap / d for an exact small division; asserts exactness. */
void
divexact_small(Limb* rp, const Limb* ap, std::size_t n, Limb d)
{
    Limb rem = 0;
    for (std::size_t i = n; i-- > 0;) {
        const u128 cur = (static_cast<u128>(rem) << 64) | ap[i];
        rp[i] = static_cast<Limb>(cur / d);
        rem = static_cast<Limb>(cur % d);
    }
    CAMP_ASSERT_MSG(rem == 0, "toom interpolation division not exact");
}

/** Signed Stirling numbers of the first kind s(j, i) for j, i <= 10. */
std::array<std::array<std::int64_t, 11>, 11>
stirling_first_kind()
{
    std::array<std::array<std::int64_t, 11>, 11> s{};
    s[0][0] = 1;
    for (int j = 1; j <= 10; ++j) {
        for (int i = 0; i <= j; ++i) {
            // x^(j) = x^(j-1) * (x - (j-1))
            std::int64_t v = i > 0 ? s[j - 1][i - 1] : 0;
            v -= static_cast<std::int64_t>(j - 1) * s[j - 1][i];
            s[j][i] = v;
        }
    }
    return s;
}

/** A value with an explicit limb count inside a fixed-stride arena. */
struct Value
{
    Limb* p = nullptr;
    std::size_t n = 0; ///< normalized size
};

} // namespace

void
mul_toom(Limb* rp, const Limb* ap, std::size_t an,
         const Limb* bp, std::size_t bn, unsigned k)
{
    CAMP_ASSERT(k == 3 || k == 4 || k == 6);
    const std::size_t m = (an + k - 1) / k; // block size in limbs
    CAMP_ASSERT(an >= bn && bn > (k - 1) * m);
    const unsigned d = 2 * k - 2;        // degree of the product polynomial
    const unsigned npoints = d;          // finite points 0 .. 2k-3

    // Split operands into k blocks of m limbs (top block may be short).
    auto block = [m, k](const Limb* p, std::size_t n, unsigned i) {
        const std::size_t off = static_cast<std::size_t>(i) * m;
        const std::size_t len = i + 1 == k ? n - off : m;
        return std::pair<const Limb*, std::size_t>(p + off, len);
    };

    // Evaluate a(p) and b(p) by Horner; scalar points are tiny so each
    // evaluation fits in m + 1 limbs (see DESIGN.md bounds).
    const std::size_t en = m + 2;
    auto evaluate = [&](Limb* out, const Limb* p, std::size_t n,
                        Limb point) -> std::size_t {
        auto [tp, tn0] = block(p, n, k - 1);
        std::size_t vn = normalized_size(tp, tn0);
        copy(out, tp, vn);
        for (int i = static_cast<int>(k) - 2; i >= 0; --i) {
            Limb carry = mul_1(out, out, vn, point);
            if (carry)
                out[vn++] = carry;
            auto [bpp, bnn] = block(p, n, static_cast<unsigned>(i));
            const std::size_t bln = normalized_size(bpp, bnn);
            if (vn >= bln) {
                carry = add(out, out, vn, bpp, bln);
            } else {
                carry = add(out, bpp, bln, out, vn);
                vn = bln;
            }
            if (carry)
                out[vn++] = carry;
            CAMP_ASSERT(vn <= en);
        }
        return vn;
    };

    // Pointwise products v_p = a(p) * b(p); v_0 = a0 * b0 shortcut.
    // Every point is independent (disjoint vbuf slice, disjoint v[p]
    // entry), as is the leading coefficient v_inf, so all 2k-1
    // products fork onto the pool above the parallel threshold; the
    // serial and parallel schedules compute identical limbs.
    const std::size_t vn_cap = 2 * en;
    support::ScratchFrame scratch;
    Limb* vbuf = scratch.alloc(npoints * vn_cap);
    std::vector<Value> v(npoints);
    auto compute_point = [&](unsigned p) {
        support::ScratchFrame frame; // per-executing-thread buffers
        Limb* ea = frame.alloc(en);
        Limb* eb = frame.alloc(en);
        std::size_t ean, ebn;
        if (p == 0) {
            ean = normalized_size(ap, m);
            copy(ea, ap, ean);
            ebn = normalized_size(bp, m);
            copy(eb, bp, ebn);
        } else {
            ean = evaluate(ea, ap, an, p);
            ebn = evaluate(eb, bp, bn, p);
        }
        Limb* out = vbuf + p * vn_cap;
        std::size_t outn = ean + ebn;
        if (ean == 0 || ebn == 0) {
            outn = 0;
        } else if (ean >= ebn) {
            mul(out, ea, ean, eb, ebn);
        } else {
            mul(out, eb, ebn, ea, ean);
        }
        v[p] = {out, normalized_size(out, outn)};
    };

    // v_inf = a_{k-1} * b_{k-1} is the leading coefficient c_d.
    auto [atp, atn0] = block(ap, an, k - 1);
    auto [btp, btn0] = block(bp, bn, k - 1);
    const std::size_t atn = normalized_size(atp, atn0);
    const std::size_t btn = normalized_size(btp, btn0);
    const std::size_t rn = an + bn;
    Limb* ctop = scratch.alloc(atn + btn + 1);
    std::size_t ctopn = 0;
    auto compute_top = [&] {
        if (atn == 0 || btn == 0)
            return;
        if (atn >= btn)
            mul(ctop, atp, atn, btp, btn);
        else
            mul(ctop, btp, btn, atp, atn);
        ctopn = normalized_size(ctop, atn + btn);
    };

    if (mul_should_fork(bn)) {
        support::TaskGroup fork;
        for (unsigned p = 1; p < npoints; ++p)
            fork.run([&compute_point, p] { compute_point(p); });
        fork.run(compute_top);
        compute_point(0); // cheapest product: keep the submitter busy
        fork.wait();
    } else {
        for (unsigned p = 0; p < npoints; ++p)
            compute_point(p);
        compute_top();
    }
    zero(rp, rn);

    // w_p = v_p - c_d * p^d  (exact leading-term removal).
    for (unsigned p = 1; p < npoints; ++p) {
        Limb pd = 1;
        for (unsigned e = 0; e < d; ++e)
            pd *= p;
        if (ctopn == 0)
            continue;
        CAMP_ASSERT(v[p].n >= ctopn);
        const Limb borrow = submul_1(v[p].p, ctop, ctopn, pd);
        Limb* high = v[p].p + ctopn;
        const std::size_t highn = v[p].n - ctopn;
        const Limb b2 = borrow ? sub_1(high, high, highn, borrow) : 0;
        CAMP_ASSERT(b2 == 0);
        v[p].n = normalized_size(v[p].p, v[p].n);
    }

    // Forward differences in place: after pass j, v[t] = Delta^j w(t - j)
    // for t >= j; all differences of a nonneg-coefficient polynomial at
    // nonneg points are nonneg, so plain unsigned subtraction suffices.
    for (unsigned j = 1; j < npoints; ++j) {
        for (unsigned t = npoints - 1; t >= j; --t) {
            CAMP_ASSERT(cmp(v[t].p, v[t].n, v[t - 1].p, v[t - 1].n) >= 0);
            const Limb borrow =
                sub(v[t].p, v[t].p, v[t].n, v[t - 1].p, v[t - 1].n);
            CAMP_ASSERT(borrow == 0);
            v[t].n = normalized_size(v[t].p, v[t].n);
        }
    }

    // Falling-factorial coefficients b_j = Delta^j w(0) / j!.
    Limb factorial = 1;
    for (unsigned j = 2; j < npoints; ++j) {
        factorial *= j;
        divexact_small(v[j].p, v[j].p, v[j].n, factorial);
        v[j].n = normalized_size(v[j].p, v[j].n);
    }

    // Monomial coefficients c_i = sum_j b_j * s(j, i), then recompose
    // r = sum_i c_i * B^(i*m). c_i >= 0 even though s(j, i) alternates.
    static const auto stirling = stirling_first_kind();
    std::vector<Limb> cpos(vn_cap + 1), cneg(vn_cap + 1);
    for (unsigned i = 0; i < npoints; ++i) {
        std::size_t pn = 0, nn = 0;
        zero(cpos.data(), cpos.size());
        zero(cneg.data(), cneg.size());
        for (unsigned j = i; j < npoints; ++j) {
            const std::int64_t s = stirling[j][i];
            if (s == 0 || v[j].n == 0)
                continue;
            Limb* acc = s > 0 ? cpos.data() : cneg.data();
            std::size_t& accn = s > 0 ? pn : nn;
            const Limb scalar = static_cast<Limb>(s > 0 ? s : -s);
            if (accn < v[j].n) {
                zero(acc + accn, v[j].n - accn);
                accn = v[j].n;
            }
            Limb carry = addmul_1(acc, v[j].p, v[j].n, scalar);
            if (v[j].n < accn)
                carry = add_1(acc + v[j].n, acc + v[j].n, accn - v[j].n,
                              carry);
            if (carry) {
                CAMP_ASSERT(accn < cpos.size());
                acc[accn++] = carry;
            }
        }
        if (nn > 0) {
            CAMP_ASSERT(pn >= nn &&
                        cmp(cpos.data(), pn, cneg.data(), nn) >= 0);
            const Limb borrow = sub(cpos.data(), cpos.data(), pn,
                                    cneg.data(), nn);
            CAMP_ASSERT(borrow == 0);
        }
        pn = normalized_size(cpos.data(), pn);
        if (pn == 0)
            continue;
        const std::size_t off = static_cast<std::size_t>(i) * m;
        CAMP_ASSERT(off + pn <= rn);
        const Limb carry = add(rp + off, rp + off, rn - off,
                               cpos.data(), pn);
        CAMP_ASSERT(carry == 0);
    }
    if (ctopn != 0) {
        const std::size_t off = static_cast<std::size_t>(d) * m;
        CAMP_ASSERT(off + ctopn <= rn);
        const Limb carry = add(rp + off, rp + off, rn - off,
                               ctop, ctopn);
        CAMP_ASSERT(carry == 0);
    }
}

} // namespace camp::mpn
