#include "mpn/basic.hpp"
#include "mpn/mul.hpp"

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace camp::mpn {

Limb
mul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    Limb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const u128 p = static_cast<u128>(ap[i]) * b + carry;
        rp[i] = static_cast<Limb>(p);
        carry = static_cast<Limb>(p >> 64);
    }
    return carry;
}

Limb
addmul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    Limb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const u128 p = static_cast<u128>(ap[i]) * b + rp[i] + carry;
        rp[i] = static_cast<Limb>(p);
        carry = static_cast<Limb>(p >> 64);
    }
    return carry;
}

Limb
submul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    Limb borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const u128 p = static_cast<u128>(ap[i]) * b + borrow;
        const Limb lo = static_cast<Limb>(p);
        borrow = static_cast<Limb>(p >> 64) + (rp[i] < lo);
        rp[i] -= lo;
    }
    return borrow;
}

void
mul_basecase(Limb* rp, const Limb* ap, std::size_t an,
             const Limb* bp, std::size_t bn)
{
    CAMP_ASSERT(an >= bn && bn >= 1);
    rp[an] = mul_1(rp, ap, an, bp[0]);
    for (std::size_t j = 1; j < bn; ++j)
        rp[an + j] = addmul_1(rp + j, ap, an, bp[j]);
}

void
sqr_basecase(Limb* rp, const Limb* ap, std::size_t n)
{
    CAMP_ASSERT(n >= 1);
    // Off-diagonal products a[i]*a[j] for i < j, then double, then add the
    // diagonal squares: a^2 = 2 * sum_{i<j} a_i a_j B^{i+j} + sum a_i^2.
    zero(rp, 2 * n);
    for (std::size_t i = 0; i + 1 < n; ++i)
        rp[n + i] = addmul_1(rp + 2 * i + 1, ap + i + 1, n - i - 1, ap[i]);
    // Double the off-diagonal part.
    Limb carry = 0;
    for (std::size_t i = 1; i < 2 * n - 1; ++i) {
        const Limb v = rp[i];
        rp[i] = (v << 1) | carry;
        carry = v >> 63;
    }
    rp[2 * n - 1] = carry;
    // Add diagonal squares.
    Limb add_carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const u128 sq = static_cast<u128>(ap[i]) * ap[i];
        u128 s = static_cast<u128>(rp[2 * i]) + static_cast<Limb>(sq) +
                 add_carry;
        rp[2 * i] = static_cast<Limb>(s);
        s = static_cast<u128>(rp[2 * i + 1]) + static_cast<Limb>(sq >> 64) +
            static_cast<Limb>(s >> 64);
        rp[2 * i + 1] = static_cast<Limb>(s);
        add_carry = static_cast<Limb>(s >> 64);
    }
    CAMP_ASSERT(add_carry == 0);
}

} // namespace camp::mpn
