#include "mpn/basic.hpp"
#include "mpn/mul.hpp"

#include "mpn/kernels/kernels.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace camp::mpn {

// The inner primitives dispatch through the runtime-probed kernel
// table (scalar / sse4 / avx2 — see mpn/kernels/kernels.hpp); the
// scalar reference loops live in mpn/kernels/scalar.cpp.

Limb
mul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    return kernels::active().mul_1(rp, ap, n, b);
}

Limb
addmul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    return kernels::active().addmul_1(rp, ap, n, b);
}

Limb
submul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    return kernels::active().submul_1(rp, ap, n, b);
}

void
mul_basecase(Limb* rp, const Limb* ap, std::size_t an,
             const Limb* bp, std::size_t bn)
{
    CAMP_ASSERT(an >= bn && bn >= 1);
    kernels::active().mul_basecase(rp, ap, an, bp, bn);
}

void
sqr_basecase(Limb* rp, const Limb* ap, std::size_t n)
{
    CAMP_ASSERT(n >= 1);
    const kernels::KernelTable& table = kernels::active();
    // Off-diagonal products a[i]*a[j] for i < j, then double, then add the
    // diagonal squares: a^2 = 2 * sum_{i<j} a_i a_j B^{i+j} + sum a_i^2.
    zero(rp, 2 * n);
    for (std::size_t i = 0; i + 1 < n; ++i)
        rp[n + i] =
            table.addmul_1(rp + 2 * i + 1, ap + i + 1, n - i - 1, ap[i]);
    // Double the off-diagonal part.
    Limb carry = 0;
    for (std::size_t i = 1; i < 2 * n - 1; ++i) {
        const Limb v = rp[i];
        rp[i] = (v << 1) | carry;
        carry = v >> 63;
    }
    rp[2 * n - 1] = carry;
    // Add diagonal squares.
    Limb add_carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const u128 sq = static_cast<u128>(ap[i]) * ap[i];
        u128 s = static_cast<u128>(rp[2 * i]) + static_cast<Limb>(sq) +
                 add_carry;
        rp[2 * i] = static_cast<Limb>(s);
        s = static_cast<u128>(rp[2 * i + 1]) + static_cast<Limb>(sq >> 64) +
            static_cast<Limb>(s >> 64);
        rp[2 * i + 1] = static_cast<Limb>(s);
        add_carry = static_cast<Limb>(s >> 64);
    }
    CAMP_ASSERT(add_carry == 0);
}

} // namespace camp::mpn
