/**
 * @file
 * Schönhage–Strassen multiplication (SSA).
 *
 * The product is computed as a length-L = 2^k cyclic convolution of
 * M-bit pieces over the Fermat ring Z/(2^K + 1), where 2 is a principal
 * 2K-th root of unity so all twiddle factors are bit shifts. Pieces are
 * zero-padded so that the linear convolution fits inside length L (no
 * wraparound), which keeps every coefficient a natural number. Pointwise
 * products go back through mul(), so huge operands recurse into SSA
 * again — the O(n log n log log n) structure of Table I.
 */
#include <vector>

#include "mpn/basic.hpp"
#include "mpn/mul.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/thread_pool.hpp"

namespace camp::mpn {

namespace {

/**
 * Arithmetic in Z/(2^K + 1) with K = kw * 64. Residues are kw + 1 limbs,
 * kept fully reduced in [0, 2^K] (the top limb is 1 only for the value
 * 2^K itself).
 */
class FermatRing
{
  public:
    explicit FermatRing(std::size_t kw) : kw_(kw) {}

    std::size_t kw() const { return kw_; }
    std::size_t limbs() const { return kw_ + 1; }
    std::uint64_t bits() const { return kw_ * 64; }

    /** Reduce a residue in [0, 2^(K+1)) to [0, 2^K]. */
    void
    reduce_once(Limb* r) const
    {
        // Value >= 2^K + 1 iff top limb > 1, or top limb == 1 with a
        // nonzero low part.
        if (r[kw_] > 1 || (r[kw_] == 1 && !all_zero(r, kw_))) {
            const Limb borrow = sub_1(r, r, kw_, 1);
            CAMP_ASSERT(r[kw_] >= borrow + 1);
            r[kw_] -= borrow + 1;
        }
    }

    /** r = a + b mod (2^K + 1); r may alias a or b. */
    void
    add_mod(Limb* r, const Limb* a, const Limb* b) const
    {
        const Limb carry = add_n(r, a, b, kw_ + 1);
        CAMP_ASSERT(carry == 0); // both operands <= 2^K < 2^(64(kw+1)-1)
        reduce_once(r);
    }

    /** r = a - b mod (2^K + 1); r may alias a or b. */
    void
    sub_mod(Limb* r, const Limb* a, const Limb* b) const
    {
        const Limb borrow = sub_n(r, a, b, kw_ + 1);
        if (borrow) {
            // Add 2^K + 1 back; the difference was > -(2^K + 1), so the
            // result lands in [0, 2^K].
            const Limb carry = add_1(r, r, kw_, 1);
            r[kw_] += carry + 1;
        }
        reduce_once(r);
    }

    /** r = -a mod (2^K + 1). */
    void
    neg_mod(Limb* r, const Limb* a) const
    {
        if (all_zero(a, kw_ + 1)) {
            zero(r, kw_ + 1);
            return;
        }
        // (2^K + 1) - a.
        std::vector<Limb> mod(kw_ + 1, 0);
        mod[0] = 1;
        mod[kw_] = 1;
        const Limb borrow = sub_n(r, mod.data(), a, kw_ + 1);
        CAMP_ASSERT(borrow == 0);
    }

    /**
     * r = a * 2^e mod (2^K + 1) for 0 <= e < 2K; r must not alias a.
     * Uses 2^K == -1: a * 2^e = low(a << e) - high(a << e).
     */
    void
    shl_mod(Limb* r, const Limb* a, std::uint64_t e) const
    {
        const std::uint64_t K = bits();
        CAMP_ASSERT(e < 2 * K);
        bool negate = false;
        if (e >= K) {
            e -= K;
            negate = true;
        }
        if (e == 0) {
            copy(r, a, kw_ + 1);
        } else {
            // a <= 2^K: split a = high * 2^(K-e) + low, then
            // a * 2^e = low * 2^e - high (mod 2^K + 1).
            std::vector<Limb> lo(kw_ + 1, 0), hi(kw_ + 1, 0);
            split_shift(a, e, lo.data(), hi.data());
            sub_mod(r, lo.data(), hi.data());
        }
        if (negate) {
            std::vector<Limb> t(r, r + kw_ + 1);
            neg_mod(r, t.data());
        }
    }

    /** Reduce a plain tn-limb product into a residue; r != t. */
    void
    reduce_full(Limb* r, const Limb* t, std::size_t tn) const
    {
        // t = sum chunks_i * 2^(K i) == sum (-1)^i chunks_i.
        zero(r, kw_ + 1);
        std::vector<Limb> chunk(kw_ + 1);
        bool subtract = false;
        for (std::size_t off = 0; off < tn; off += kw_) {
            const std::size_t len = std::min(kw_, tn - off);
            copy(chunk.data(), t + off, len);
            zero(chunk.data() + len, kw_ + 1 - len);
            if (subtract)
                sub_mod(r, r, chunk.data());
            else
                add_mod(r, r, chunk.data());
            subtract = !subtract;
        }
    }

  private:
    static bool
    all_zero(const Limb* p, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            if (p[i] != 0)
                return false;
        return true;
    }

    /**
     * lo = (a mod 2^(K-e)) << e (kw+1 limbs), hi = a >> (K-e), for
     * 0 < e < K and a <= 2^K.
     */
    void
    split_shift(const Limb* a, std::uint64_t e, Limb* lo, Limb* hi) const
    {
        const std::uint64_t K = bits();
        const std::uint64_t split = K - e; // bits kept in low part
        const std::size_t sl = static_cast<std::size_t>(split / 64);
        const unsigned sb = static_cast<unsigned>(split % 64);
        // hi = a >> split over kw+1 limbs.
        {
            const std::size_t n = kw_ + 1 - sl;
            if (sb == 0)
                copy(hi, a + sl, n);
            else
                rshift(hi, a + sl, n, sb);
        }
        // lo = (a mod 2^split) << e; result occupies bits [e, K).
        std::vector<Limb> low(kw_ + 1, 0);
        copy(low.data(), a, sl);
        if (sb != 0)
            low[sl] = a[sl] & ((static_cast<Limb>(1) << sb) - 1);
        const std::size_t el = static_cast<std::size_t>(e / 64);
        const unsigned eb = static_cast<unsigned>(e % 64);
        if (eb == 0) {
            copy(lo + el, low.data(), kw_ + 1 - el);
        } else {
            const Limb out = lshift(lo + el, low.data(), kw_ + 1 - el, eb);
            CAMP_ASSERT(out == 0);
        }
    }

    std::size_t kw_;
};

/** In-place iterative FFT of length L over the ring; stride via vectors. */
class FermatFft
{
  public:
    FermatFft(const FermatRing& ring, unsigned log2_len)
        : ring_(ring), k_(log2_len), len_(std::size_t{1} << log2_len)
    {
        CAMP_ASSERT(2 * ring_.bits() % len_ == 0);
        root_exp_ = 2 * ring_.bits() / len_; // omega = 2^root_exp_
    }

    /** data = FFT(data); inverse applies omega^-1 and the 1/L scale. */
    void
    transform(std::vector<Limb>& data, bool inverse) const
    {
        const std::size_t rl = ring_.limbs();
        CAMP_ASSERT(data.size() == len_ * rl);
        bit_reverse(data);
        std::vector<Limb> t(rl);
        const std::uint64_t period = 2 * ring_.bits();
        for (unsigned s = 1; s <= k_; ++s) {
            const std::size_t half = std::size_t{1} << (s - 1);
            const std::uint64_t step =
                root_exp_ << (k_ - s); // omega^(L / 2^s)
            for (std::size_t start = 0; start < len_;
                 start += 2 * half) {
                std::uint64_t e = 0;
                for (std::size_t j = 0; j < half; ++j) {
                    Limb* u = data.data() + (start + j) * rl;
                    Limb* v = data.data() + (start + j + half) * rl;
                    const std::uint64_t twiddle =
                        inverse && e != 0 ? period - e : e;
                    ring_.shl_mod(t.data(), v, twiddle);
                    ring_.sub_mod(v, u, t.data());
                    ring_.add_mod(u, u, t.data());
                    e += step;
                    if (e >= period)
                        e -= period;
                }
            }
        }
        if (inverse) {
            // Multiply by 1/L = 2^(2K - k).
            for (std::size_t i = 0; i < len_; ++i) {
                Limb* p = data.data() + i * rl;
                copy(t.data(), p, rl);
                ring_.shl_mod(p, t.data(), period - k_);
            }
        }
    }

  private:
    void
    bit_reverse(std::vector<Limb>& data) const
    {
        const std::size_t rl = ring_.limbs();
        std::vector<Limb> t(rl);
        for (std::size_t i = 0, j = 0; i < len_; ++i) {
            if (i < j) {
                Limb* a = data.data() + i * rl;
                Limb* b = data.data() + j * rl;
                copy(t.data(), a, rl);
                copy(a, b, rl);
                copy(b, t.data(), rl);
            }
            std::size_t bit = len_ >> 1;
            while (j & bit) {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
        }
    }

    const FermatRing& ring_;
    unsigned k_;
    std::size_t len_;
    std::uint64_t root_exp_;
};

} // namespace

void
mul_ssa(Limb* rp, const Limb* ap, std::size_t an,
        const Limb* bp, std::size_t bn)
{
    CAMP_ASSERT(an >= bn && bn >= 1);
    const std::uint64_t bits_a = bit_size(ap, an);
    const std::uint64_t bits_b = bit_size(bp, bn);
    if (bits_a == 0 || bits_b == 0) {
        zero(rp, an + bn);
        return;
    }
    const std::uint64_t total = bits_a + bits_b;

    // Transform length L = 2^k ~ sqrt(total / 64): balances piece size
    // against transform size so pointwise products stay superlinear-free.
    unsigned k = static_cast<unsigned>(ceil_log2(total) / 2);
    k = k > 4 ? k - 2 : 2;
    if (k > 20)
        k = 20;
    const std::size_t L = std::size_t{1} << k;

    // Piece size M (multiple of 64 so splitting is limb-aligned), chosen
    // so pieces_a + pieces_b - 1 <= L: the negacyclic convolution equals
    // the linear convolution (no wraparound, all coefficients >= 0).
    const std::uint64_t M = ceil_div(total, L - 1) <= 64
                                ? 64
                                : ceil_div(ceil_div(total, L - 1), 64) * 64;
    const std::size_t pieces_a =
        static_cast<std::size_t>(ceil_div(bits_a, M));
    const std::size_t pieces_b =
        static_cast<std::size_t>(ceil_div(bits_b, M));
    CAMP_ASSERT(pieces_a + pieces_b - 1 <= L);

    // Ring width K >= 2M + k + 1 (coefficient magnitude bound), rounded
    // up so both L | K (for the 2K-th root) and 64 | K (limb alignment).
    const std::uint64_t align = std::max<std::uint64_t>(L, 64);
    const std::uint64_t K = ceil_div(2 * M + k + 1, align) * align;
    const FermatRing ring(static_cast<std::size_t>(K / 64));
    const std::size_t rl = ring.limbs();
    const std::size_t mw = static_cast<std::size_t>(M / 64);

    // Decompose into residues (limb-aligned M-bit pieces, zero padded).
    auto decompose = [&](const Limb* p, std::size_t n) {
        std::vector<Limb> data(L * rl, 0);
        for (std::size_t i = 0; i * mw < n; ++i) {
            const std::size_t off = i * mw;
            const std::size_t len = std::min(mw, n - off);
            copy(data.data() + i * rl, p + off, len);
        }
        return data;
    };
    std::vector<Limb> da = decompose(ap, an);
    std::vector<Limb> db = decompose(bp, bn);

    // The two forward transforms touch disjoint arrays and the L
    // pointwise products each own residue slice i of da (reading only
    // slice i of db), so both stages fork onto the pool; results are
    // bit-identical to the serial order.
    const bool parallel = mul_should_fork(bn);
    const FermatFft fft(ring, k);
    if (parallel) {
        support::TaskGroup fork;
        fork.run([&] { fft.transform(db, false); });
        fft.transform(da, false);
        fork.wait();
    } else {
        fft.transform(da, false);
        fft.transform(db, false);
    }

    // Pointwise products, recursing through the mul() dispatcher.
    auto pointwise = [&](std::size_t begin, std::size_t end) {
        support::ScratchFrame frame;
        Limb* prod = frame.alloc(2 * rl);
        for (std::size_t i = begin; i < end; ++i) {
            Limb* pa = da.data() + i * rl;
            const Limb* pb = db.data() + i * rl;
            const std::size_t na = normalized_size(pa, rl);
            const std::size_t nb = normalized_size(pb, rl);
            if (na == 0 || nb == 0) {
                zero(pa, rl);
                continue;
            }
            if (na >= nb)
                mul(prod, pa, na, pb, nb);
            else
                mul(prod, pb, nb, pa, na);
            ring.reduce_full(pa, prod, na + nb);
        }
    };
    if (parallel) {
        support::TaskGroup fork;
        const std::size_t chunks = std::min<std::size_t>(
            L, 4 * support::ThreadPool::global().executors());
        const std::size_t step = (L + chunks - 1) / chunks;
        for (std::size_t begin = step; begin < L; begin += step)
            fork.run([&pointwise, begin, step, L] {
                pointwise(begin, std::min(begin + step, L));
            });
        pointwise(0, std::min(step, L));
        fork.wait();
    } else {
        pointwise(0, L);
    }

    fft.transform(da, true);

    // Carry recomposition: r = sum coeff_i * 2^(M i). Coefficients are
    // plain naturals < 2^(2M + k) by the no-wraparound construction.
    zero(rp, an + bn);
    for (std::size_t i = 0; i < pieces_a + pieces_b - 1; ++i) {
        const Limb* c = da.data() + i * rl;
        const std::size_t cn = normalized_size(c, rl);
        if (cn == 0)
            continue;
        const std::size_t off = i * mw;
        CAMP_ASSERT(off + cn <= an + bn ||
                    normalized_size(c, cn) * 64 + off * 64 <=
                        (an + bn) * 64);
        const std::size_t room = an + bn - off;
        CAMP_ASSERT(cn <= room);
        const Limb carry = add(rp + off, rp + off, room, c, cn);
        CAMP_ASSERT(carry == 0);
    }
    // Residues beyond the last meaningful coefficient must be zero.
    for (std::size_t i = pieces_a + pieces_b - 1; i < L; ++i) {
        CAMP_ASSERT(normalized_size(da.data() + i * rl, rl) == 0);
    }
}

} // namespace camp::mpn
