#include "mpn/natural.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "mpn/basic.hpp"
#include "mpn/div.hpp"
#include "mpn/mul.hpp"
#include "mpn/ophook.hpp"
#include "mpn/sqrt.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"

namespace camp::mpn {

namespace {

/** Largest power of ten in a limb: 10^19. */
constexpr Limb kPow10PerLimb = 10000000000000000000ULL;
constexpr unsigned kDigitsPerLimb = 19;

} // namespace

void
Natural::normalize()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

Natural
Natural::from_limbs(std::vector<Limb> limbs)
{
    Natural n;
    n.limbs_ = std::move(limbs);
    n.normalize();
    return n;
}

std::uint64_t
Natural::bits() const
{
    return bit_size(limbs_.data(), limbs_.size());
}

bool
Natural::bit(std::uint64_t i) const
{
    return get_bit(limbs_.data(), limbs_.size(), i);
}

double
Natural::to_double() const
{
    double v = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;)
        v = v * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
    return v;
}

Natural
operator+(const Natural& a, const Natural& b)
{
    OpScope scope(OpKind::Add, a.bits(), b.bits());
    const Natural& hi = a.size() >= b.size() ? a : b;
    const Natural& lo = a.size() >= b.size() ? b : a;
    std::vector<Limb> r(hi.size() + 1);
    const Limb carry = add(r.data(), hi.data(), hi.size(), lo.data(),
                           lo.size());
    r[hi.size()] = carry;
    return Natural::from_limbs(std::move(r));
}

Natural
operator-(const Natural& a, const Natural& b)
{
    OpScope scope(OpKind::Sub, a.bits(), b.bits());
    if (a < b)
        throw std::invalid_argument("Natural subtraction underflow");
    std::vector<Limb> r(a.size());
    const Limb borrow = sub(r.data(), a.data(), a.size(), b.data(),
                            b.size());
    CAMP_ASSERT(borrow == 0);
    return Natural::from_limbs(std::move(r));
}

Natural
operator*(const Natural& a, const Natural& b)
{
    OpScope scope(OpKind::Mul, a.bits(), b.bits());
    if (a.is_zero() || b.is_zero())
        return Natural();
    // Churn visibility: every heap-allocated product buffer bumps
    // mpn.alloc.count (the SoA batch path bumps it once per lane too).
    support::metrics::counter("mpn.alloc.count").add(1);
    std::vector<Limb> r(a.size() + b.size());
    if (a.size() >= b.size())
        mul(r.data(), a.data(), a.size(), b.data(), b.size());
    else
        mul(r.data(), b.data(), b.size(), a.data(), a.size());
    return Natural::from_limbs(std::move(r));
}

std::pair<Natural, Natural>
Natural::divrem(const Natural& a, const Natural& b)
{
    OpScope scope(OpKind::Div, a.bits(), b.bits());
    if (b.is_zero())
        throw std::invalid_argument("Natural division by zero");
    if (a < b)
        return {Natural(), a};
    std::vector<Limb> q(a.size() - b.size() + 1), r(b.size());
    camp::mpn::divrem(q.data(), r.data(), a.data(), a.size(), b.data(),
                      b.size());
    return {from_limbs(std::move(q)), from_limbs(std::move(r))};
}

Natural
operator/(const Natural& a, const Natural& b)
{
    return Natural::divrem(a, b).first;
}

Natural
operator%(const Natural& a, const Natural& b)
{
    return Natural::divrem(a, b).second;
}

Natural
operator<<(const Natural& a, std::uint64_t cnt)
{
    OpScope scope(OpKind::Shift, a.bits(), cnt);
    if (a.is_zero())
        return a;
    const std::size_t limb_shift = static_cast<std::size_t>(cnt / 64);
    const unsigned bit_shift = static_cast<unsigned>(cnt % 64);
    std::vector<Limb> r(a.size() + limb_shift + 1, 0);
    if (bit_shift == 0) {
        copy(r.data() + limb_shift, a.data(), a.size());
    } else {
        r[a.size() + limb_shift] =
            lshift(r.data() + limb_shift, a.data(), a.size(), bit_shift);
    }
    return Natural::from_limbs(std::move(r));
}

Natural
operator>>(const Natural& a, std::uint64_t cnt)
{
    OpScope scope(OpKind::Shift, a.bits(), cnt);
    const std::size_t limb_shift = static_cast<std::size_t>(cnt / 64);
    if (limb_shift >= a.size())
        return Natural();
    const unsigned bit_shift = static_cast<unsigned>(cnt % 64);
    std::vector<Limb> r(a.size() - limb_shift);
    if (bit_shift == 0)
        copy(r.data(), a.data() + limb_shift, r.size());
    else
        rshift(r.data(), a.data() + limb_shift, r.size(), bit_shift);
    return Natural::from_limbs(std::move(r));
}

namespace {

Natural
logic_op(const Natural& a, const Natural& b,
         void (*op)(Limb*, const Limb*, const Limb*, std::size_t),
         bool keep_high)
{
    const Natural& hi = a.size() >= b.size() ? a : b;
    const Natural& lo = a.size() >= b.size() ? b : a;
    std::vector<Limb> r(keep_high ? hi.size() : lo.size(), 0);
    op(r.data(), hi.data(), lo.data(), lo.size());
    if (keep_high)
        copy(r.data() + lo.size(), hi.data() + lo.size(),
             hi.size() - lo.size());
    return Natural::from_limbs(std::move(r));
}

} // namespace

Natural
operator&(const Natural& a, const Natural& b)
{
    return logic_op(a, b, and_n, false);
}

Natural
operator|(const Natural& a, const Natural& b)
{
    return logic_op(a, b, or_n, true);
}

Natural
operator^(const Natural& a, const Natural& b)
{
    return logic_op(a, b, xor_n, true);
}

std::strong_ordering
operator<=>(const Natural& a, const Natural& b)
{
    const int c = cmp(a.data(), a.size(), b.data(), b.size());
    return c < 0 ? std::strong_ordering::less
           : c > 0 ? std::strong_ordering::greater
                   : std::strong_ordering::equal;
}

std::pair<Natural, Natural>
Natural::sqrtrem(const Natural& a)
{
    OpScope scope(OpKind::Sqrt, a.bits(), 0);
    if (a.is_zero())
        return {Natural(), Natural()};
    std::vector<Limb> s((a.size() + 1) / 2), r(a.size());
    camp::mpn::sqrtrem(s.data(), r.data(), a.data(), a.size());
    return {from_limbs(std::move(s)), from_limbs(std::move(r))};
}

Natural
Natural::isqrt(const Natural& a)
{
    return sqrtrem(a).first;
}

Natural
Natural::pow(const Natural& a, std::uint64_t e)
{
    Natural result(1);
    Natural base = a;
    while (e != 0) {
        if (e & 1)
            result *= base;
        e >>= 1;
        if (e != 0)
            base *= base;
    }
    return result;
}

Natural
Natural::gcd(Natural a, Natural b)
{
    OpScope scope(OpKind::Gcd, a.bits(), b.bits());
    // Binary GCD: strip common twos, then subtract-and-shift.
    if (a.is_zero())
        return b;
    if (b.is_zero())
        return a;
    std::uint64_t shift = 0;
    while (!a.is_odd() && !b.is_odd()) {
        a >>= 1;
        b >>= 1;
        ++shift;
    }
    while (!a.is_odd())
        a >>= 1;
    while (!b.is_zero()) {
        while (!b.is_odd())
            b >>= 1;
        if (a > b)
            std::swap(a, b);
        b -= a;
    }
    return a << shift;
}

std::uint64_t
Natural::popcount() const
{
    std::uint64_t count = 0;
    for (const Limb limb : limbs_)
        count += static_cast<std::uint64_t>(std::popcount(limb));
    return count;
}

std::uint64_t
Natural::scan1() const
{
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        if (limbs_[i] != 0)
            return i * 64 + static_cast<std::uint64_t>(
                                std::countr_zero(limbs_[i]));
    }
    return bits();
}

std::uint64_t
Natural::trailing_zeros() const
{
    return scan1();
}

std::vector<std::uint8_t>
Natural::to_bytes() const
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(limbs_.size() * 8);
    for (const Limb limb : limbs_)
        for (int b = 0; b < 8; ++b)
            bytes.push_back(static_cast<std::uint8_t>(limb >> (8 * b)));
    while (!bytes.empty() && bytes.back() == 0)
        bytes.pop_back();
    return bytes;
}

Natural
Natural::from_bytes(const std::uint8_t* data, std::size_t size)
{
    std::vector<Limb> limbs((size + 7) / 8, 0);
    for (std::size_t i = 0; i < size; ++i)
        limbs[i / 8] |= static_cast<Limb>(data[i]) << (8 * (i % 8));
    return from_limbs(std::move(limbs));
}

// ---------------------------------------------------------------------
// String conversion: divide-and-conquer in both directions so that the
// Pi benchmark's multi-million digit output is not quadratic.
// ---------------------------------------------------------------------

namespace {

/** Cached 10^(2^k) table so both conversions split at the same points. */
const Natural&
pow10_pow2(unsigned k)
{
    static std::vector<Natural> cache{Natural(10)};
    while (cache.size() <= k)
        cache.push_back(cache.back() * cache.back());
    return cache[k];
}

} // namespace

Natural
Natural::pow10(std::uint64_t e)
{
    Natural r(1);
    for (unsigned k = 0; e != 0; ++k, e >>= 1) {
        if (e & 1)
            r *= pow10_pow2(k);
    }
    return r;
}

namespace {

Natural
from_decimal_rec(std::string_view s)
{
    if (s.size() <= kDigitsPerLimb) {
        Limb v = 0;
        for (const char c : s) {
            if (c < '0' || c > '9')
                throw std::invalid_argument(
                    "Natural::from_decimal: bad digit");
            v = v * 10 + static_cast<Limb>(c - '0');
        }
        return Natural(v);
    }
    // Split the *low* part at a power-of-two digit count so every
    // multiplier is a cached 10^(2^k).
    const unsigned k = static_cast<unsigned>(ceil_log2(s.size()) - 1);
    const std::size_t low = std::size_t{1} << k;
    const Natural high = from_decimal_rec(s.substr(0, s.size() - low));
    const Natural lo = from_decimal_rec(s.substr(s.size() - low));
    return high * pow10_pow2(k) + lo;
}

void
to_decimal_rec(const Natural& n, std::uint64_t digits, std::string& out)
{
    // Writes exactly `digits` characters (zero padded) for n < 10^digits.
    if (digits <= kDigitsPerLimb) {
        char buf[24];
        Limb v = n.to_uint64();
        CAMP_ASSERT(n.size() <= 1);
        for (std::uint64_t i = digits; i-- > 0;) {
            buf[i] = static_cast<char>('0' + v % 10);
            v /= 10;
        }
        CAMP_ASSERT(v == 0);
        out.append(buf, digits);
        return;
    }
    const unsigned k = static_cast<unsigned>(ceil_log2(digits) - 1);
    const std::uint64_t low_digits = std::uint64_t{1} << k;
    auto [q, r] = Natural::divrem(n, pow10_pow2(k));
    to_decimal_rec(q, digits - low_digits, out);
    to_decimal_rec(r, low_digits, out);
}

} // namespace

Natural
Natural::from_decimal(std::string_view s)
{
    if (s.empty())
        throw std::invalid_argument("Natural::from_decimal: empty");
    return from_decimal_rec(s);
}

std::string
Natural::to_decimal() const
{
    if (is_zero())
        return "0";
    // Upper bound on digit count: bits * log10(2) + 1.
    const std::uint64_t digits =
        static_cast<std::uint64_t>(static_cast<double>(bits()) * 0.30103) +
        2;
    std::string out;
    out.reserve(digits);
    to_decimal_rec(*this, digits, out);
    const std::size_t first = out.find_first_not_of('0');
    return out.substr(first);
}

Natural
Natural::from_hex(std::string_view s)
{
    if (s.empty())
        throw std::invalid_argument("Natural::from_hex: empty");
    std::vector<Limb> limbs(limbs_for_bits(s.size() * 4), 0);
    std::size_t bitpos = 0;
    for (std::size_t i = s.size(); i-- > 0;) {
        const char c = s[i];
        Limb v;
        if (c >= '0' && c <= '9')
            v = static_cast<Limb>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v = static_cast<Limb>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            v = static_cast<Limb>(c - 'A' + 10);
        else
            throw std::invalid_argument("Natural::from_hex: bad digit");
        limbs[bitpos / 64] |= v << (bitpos % 64);
        bitpos += 4;
    }
    return from_limbs(std::move(limbs));
}

std::string
Natural::to_hex() const
{
    if (is_zero())
        return "0";
    static const char* digits = "0123456789abcdef";
    std::string out;
    bool leading = true;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        for (int nib = 15; nib >= 0; --nib) {
            const unsigned v =
                static_cast<unsigned>((limbs_[i] >> (nib * 4)) & 0xf);
            if (leading && v == 0)
                continue;
            leading = false;
            out.push_back(digits[v]);
        }
    }
    return out;
}

} // namespace camp::mpn
