#include "mpn/div.hpp"

#include <vector>

#include "mpn/basic.hpp"
#include "mpn/mul.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace camp::mpn {

DivTuning&
div_tuning()
{
    static DivTuning tuning;
    return tuning;
}

Limb
divrem_1(Limb* qp, const Limb* ap, std::size_t n, Limb d)
{
    CAMP_ASSERT(d != 0);
    Limb rem = 0;
    for (std::size_t i = n; i-- > 0;) {
        const u128 cur = (static_cast<u128>(rem) << 64) | ap[i];
        qp[i] = static_cast<Limb>(cur / d);
        rem = static_cast<Limb>(cur % d);
    }
    return rem;
}

namespace {

/**
 * Knuth Algorithm D core. up is a (un + 1)-limb buffer with up[un] == 0,
 * holding the bit-normalized dividend; dp is the bit-normalized divisor
 * (top bit set), dn >= 2. Writes un - dn + 1 quotient limbs to qp and
 * leaves the remainder in up[0..dn).
 */
void
knuth_core(Limb* qp, Limb* up, std::size_t un, const Limb* dp,
           std::size_t dn)
{
    CAMP_ASSERT(dn >= 2 && un >= dn);
    CAMP_ASSERT(dp[dn - 1] >> 63);
    CAMP_ASSERT(up[un] == 0);
    const Limb d1 = dp[dn - 1];
    const Limb d0 = dp[dn - 2];
    for (std::size_t j = un - dn + 1; j-- > 0;) {
        const Limb u2 = up[j + dn];
        const Limb u1 = up[j + dn - 1];
        const Limb u0 = up[j + dn - 2];
        Limb qhat, rhat;
        {
            const u128 num = (static_cast<u128>(u2) << 64) | u1;
            if (u2 >= d1) { // only u2 == d1 possible by the invariant
                qhat = kLimbMax;
            } else {
                qhat = static_cast<Limb>(num / d1);
            }
            u128 r = num - static_cast<u128>(qhat) * d1;
            // Refine with the second divisor limb (at most 2 steps once
            // r fits a limb; loop is bounded regardless).
            while (r <= kLimbMax &&
                   static_cast<u128>(qhat) * d0 >
                       ((r << 64) | u0)) {
                --qhat;
                r += d1;
            }
            rhat = static_cast<Limb>(r);
            (void)rhat;
        }
        // up[j .. j+dn] -= qhat * d.
        const Limb borrow = submul_1(up + j, dp, dn, qhat);
        const Limb top = up[j + dn];
        up[j + dn] = top - borrow;
        if (top < borrow) {
            // qhat was one too large; add back.
            --qhat;
            const Limb carry = add_n(up + j, up + j, dp, dn);
            up[j + dn] += carry;
            CAMP_ASSERT(up[j + dn] == 0);
        }
        qp[j] = qhat;
    }
}

/**
 * Schoolbook divide of a un-limb in-place dividend by a normalized
 * dn-limb divisor via a scratch copy; on return ap holds the remainder
 * in its low dn limbs and zeros above. Quotient: un - dn + 1 limbs.
 */
void
knuth_inplace(Limb* qp, Limb* ap, std::size_t un, const Limb* dp,
              std::size_t dn)
{
    std::vector<Limb> u(un + 1);
    copy(u.data(), ap, un);
    u[un] = 0;
    knuth_core(qp, u.data(), un, dp, dn);
    copy(ap, u.data(), dn);
    zero(ap + dn, un - dn);
}

void div_2n_1n(Limb* qp, Limb* ap, std::size_t n, const Limb* dp);

/**
 * Burnikel–Ziegler 3h-by-2h step. a is a 3h-limb in-place dividend with
 * a[h..3h) < d (2h limbs, normalized, h = n2/2). Writes h quotient limbs
 * to qp, leaves the 2h-limb remainder in a[0..2h) and zeros a[2h..3h).
 */
void
div_3n_2n(Limb* qp, Limb* ap, std::size_t n2, const Limb* dp)
{
    const std::size_t h = n2 / 2;
    const Limb* b1 = dp + h;
    const Limb* b0 = dp;
    std::vector<Limb> t(2 * h + 1);

    if (cmp_n(ap + 2 * h, b1, h) < 0) {
        // Quotient estimate from the top 2h limbs divided by B1.
        div_2n_1n(qp, ap + h, h, b1);
        // Remainder R1 now in ap[h..2h), ap[2h..3h) zeroed.
    } else {
        // qhat = B^h - 1; R1 = [A2 A1] - (B^h - 1) * B1.
        for (std::size_t i = 0; i < h; ++i)
            qp[i] = kLimbMax;
        Limb borrow = sub_n(ap + 2 * h, ap + 2 * h, b1, h);
        CAMP_ASSERT(borrow == 0);
        const Limb carry = add(ap + h, ap + h, 2 * h, b1, h);
        CAMP_ASSERT(carry == 0);
    }

    // D = qhat * B0 (2h limbs; qp may be the all-ones fast path but the
    // general multiply covers it too).
    const std::size_t qn = normalized_size(qp, h);
    const std::size_t b0n = normalized_size(b0, h);
    zero(t.data(), t.size());
    if (qn != 0 && b0n != 0) {
        if (qn >= b0n)
            mul(t.data(), qp, qn, b0, b0n);
        else
            mul(t.data(), b0, b0n, qp, qn);
    }
    const std::size_t tn = normalized_size(t.data(), qn + b0n);

    // R = R1 * B^h + A0 - D, with at most two add-back corrections.
    Limb borrow = tn == 0 ? 0 : sub(ap, ap, 3 * h, t.data(), tn);
    int guard = 0;
    while (borrow) {
        CAMP_ASSERT(++guard <= 3);
        const Limb q_borrow = sub_1(qp, qp, h, 1);
        CAMP_ASSERT(q_borrow == 0);
        const Limb carry = add(ap, ap, 3 * h, dp, 2 * h);
        borrow -= carry;
    }
    CAMP_ASSERT(normalized_size(ap + 2 * h, h) == 0);
    CAMP_ASSERT(cmp_n(ap, dp, 2 * h) < 0 || h == 0);
}

/**
 * Burnikel–Ziegler 2n-by-n step. a is a 2n-limb in-place dividend with
 * a[n..2n) < d (n limbs, normalized). Writes n quotient limbs, leaves
 * the remainder in a[0..n) and zeros a[n..2n).
 */
void
div_2n_1n(Limb* qp, Limb* ap, std::size_t n, const Limb* dp)
{
    CAMP_ASSERT(cmp_n(ap + n, dp, n) < 0);
    if ((n & 1) != 0 || n <= div_tuning().bz) {
        std::vector<Limb> q(n + 1);
        knuth_inplace(q.data(), ap, 2 * n, dp, n);
        CAMP_ASSERT(q[n] == 0);
        copy(qp, q.data(), n);
        return;
    }
    const std::size_t h = n / 2;
    // High 3h limbs first, then the low window including the remainder.
    div_3n_2n(qp + h, ap + h, n, dp);
    div_3n_2n(qp, ap, n, dp);
}

} // namespace

void
divrem(Limb* qp, Limb* rp, const Limb* ap, std::size_t an,
       const Limb* dp, std::size_t dn)
{
    CAMP_ASSERT(dn >= 1 && an >= dn);
    CAMP_ASSERT(dp[dn - 1] != 0);
    if (dn == 1) {
        rp[0] = divrem_1(qp, ap, an, dp[0]);
        return;
    }

    // Bit-normalize so the divisor's top bit is set.
    const unsigned s =
        static_cast<unsigned>(64 - camp::bit_length(dp[dn - 1]));
    std::vector<Limb> d2(dn);
    if (s == 0)
        copy(d2.data(), dp, dn);
    else
        lshift(d2.data(), dp, dn, s);
    std::vector<Limb> u2(an + 1);
    if (s == 0) {
        copy(u2.data(), ap, an);
        u2[an] = 0;
    } else {
        u2[an] = lshift(u2.data(), ap, an, s);
    }
    std::size_t un = an + (u2[an] != 0 ? 1 : 0);
    const std::size_t qn = an - dn + 1;

    if (dn <= div_tuning().bz) {
        std::vector<Limb> q(un - dn + 1 + 1, 0);
        u2.push_back(0);
        knuth_core(q.data(), u2.data(), un, d2.data(), dn);
        CAMP_ASSERT(normalized_size(q.data() + qn, q.size() - qn) == 0);
        copy(qp, q.data(), qn);
        if (s == 0)
            copy(rp, u2.data(), dn);
        else
            rshift(rp, u2.data(), dn, s);
        return;
    }

    // Burnikel–Ziegler, chunked over dn-limb quotient blocks. Scale by
    // one limb when dn is odd so the recursion splits evenly.
    const bool scaled = (dn & 1) != 0;
    const std::size_t DN = dn + (scaled ? 1 : 0);
    std::vector<Limb> d3(DN);
    if (scaled) {
        d3[0] = 0;
        copy(d3.data() + 1, d2.data(), dn);
    } else {
        copy(d3.data(), d2.data(), dn);
    }
    std::size_t UN = (scaled ? 1 : 0) + un;
    std::vector<Limb> u3(UN);
    if (scaled) {
        u3[0] = 0;
        copy(u3.data() + 1, u2.data(), un);
    } else {
        copy(u3.data(), u2.data(), un);
    }
    UN = normalized_size(u3.data(), UN);

    if (UN < DN || (UN == DN && cmp_n(u3.data(), d3.data(), DN) < 0)) {
        // Quotient is zero; remainder is the (scaled) dividend.
        zero(qp, qn);
        std::vector<Limb> r3(DN, 0);
        copy(r3.data(), u3.data(), UN);
        const Limb* r2 = r3.data() + (scaled ? 1 : 0);
        CAMP_ASSERT(!scaled || r3[0] == 0);
        if (s == 0)
            copy(rp, r2, dn);
        else
            rshift(rp, r2, dn, s);
        return;
    }

    const std::size_t qn3 = UN - DN + 1;
    const std::size_t blocks = (qn3 + DN - 1) / DN;
    std::vector<Limb> A(blocks * DN + DN, 0);
    copy(A.data(), u3.data(), UN);
    std::vector<Limb> Q(blocks * DN, 0);
    for (std::size_t b = blocks; b-- > 0;)
        div_2n_1n(Q.data() + b * DN, A.data() + b * DN, DN, d3.data());

    // Q holds qn3 meaningful limbs; the caller-visible quotient width qn
    // can be larger (unnormalized dividend) or smaller (scaling).
    const std::size_t have = std::min(qn, Q.size());
    copy(qp, Q.data(), have);
    zero(qp + have, qn - have);
    if (Q.size() > qn)
        CAMP_ASSERT(normalized_size(Q.data() + qn, Q.size() - qn) == 0);
    const Limb* r2 = A.data() + (scaled ? 1 : 0);
    CAMP_ASSERT(!scaled || A[0] == 0);
    if (s == 0)
        copy(rp, r2, dn);
    else
        rshift(rp, r2, dn, s);
}

} // namespace camp::mpn
