/**
 * @file
 * Montgomery reduction [47] — the modular-multiplication kernel the
 * paper's RSA benchmark is built from (§V-C lists Montgomery reduction
 * among MPApca's high-level operators).
 */
#ifndef CAMP_MPN_MONT_HPP
#define CAMP_MPN_MONT_HPP

#include <cstddef>
#include <vector>

#include "mpn/limb.hpp"

namespace camp::mpn {

/**
 * Precomputed context for Montgomery arithmetic modulo an odd modulus m
 * of nn limbs, with R = B^nn.
 */
class MontCtx
{
  public:
    /** @param mp odd modulus, @param mn its normalized size (>= 1). */
    MontCtx(const Limb* mp, std::size_t mn);

    std::size_t size() const { return nn_; }
    const Limb* modulus() const { return m_.data(); }

    /**
     * rp = REDC(tp) = tp * R^-1 mod m, consuming tp (2 nn limbs,
     * modified). rp must hold nn limbs and not alias tp.
     */
    void redc(Limb* rp, Limb* tp) const;

    /** rp = a * b * R^-1 mod m; all operands nn limbs, rp distinct. */
    void mul(Limb* rp, const Limb* ap, const Limb* bp) const;

    /** rp = to_mont(a) = a * R mod m. */
    void to_mont(Limb* rp, const Limb* ap) const;

    /** rp = from_mont(a) = a * R^-1 mod m. */
    void from_mont(Limb* rp, const Limb* ap) const;

    /** Montgomery form of 1 (i.e. R mod m). */
    const Limb* one() const { return r1_.data(); }

  private:
    std::size_t nn_;
    std::vector<Limb> m_;
    std::vector<Limb> r1_; ///< R mod m
    std::vector<Limb> r2_; ///< R^2 mod m
    Limb n0inv_;           ///< -m^-1 mod B
};

} // namespace camp::mpn

#endif // CAMP_MPN_MONT_HPP
