#include "mpn/mont.hpp"

#include <stdexcept>

#include "mpn/basic.hpp"
#include "mpn/div.hpp"
#include "mpn/mul.hpp"
#include "mpn/ophook.hpp"
#include "support/assert.hpp"
#include "support/opcache.hpp"

namespace camp::mpn {

MontCtx::MontCtx(const Limb* mp, std::size_t mn)
{
    mn = normalized_size(mp, mn);
    if (mn == 0 || (mp[0] & 1) == 0)
        throw std::invalid_argument("MontCtx: modulus must be odd");
    nn_ = mn;
    m_.assign(mp, mp + mn);

    // Montgomery constants depend only on the modulus, and a serving
    // session reuses the same modulus across many modexps — the
    // inverse cache turns the R / R^2 divisions into a verified hit.
    support::OpCache& cache = support::OpCache::global();
    const bool use_cache = cache.enabled();
    support::OpKey key;
    if (use_cache) {
        key = support::make_key(support::OpTag::Montgomery, m_);
        if (const auto hit = cache.lookup(key)) {
            // Copy-on-return: the cached limbs stay immutable.
            r1_ = hit->parts[0];
            r2_ = hit->parts[1];
            n0inv_ = hit->scalars[0];
            return;
        }
    }

    // -m^-1 mod B by Newton iteration (quadratic convergence from the
    // 3-bit-correct seed m itself, since m * m == 1 mod 8 for odd m).
    Limb inv = m_[0];
    for (int i = 0; i < 5; ++i)
        inv *= 2 - m_[0] * inv;
    CAMP_ASSERT(inv * m_[0] == 1);
    n0inv_ = static_cast<Limb>(0) - inv;

    // R mod m and R^2 mod m via explicit division.
    std::vector<Limb> pow(2 * nn_ + 1, 0), q(2 * nn_ + 2, 0);
    r1_.assign(nn_, 0);
    pow[nn_] = 1; // B^nn
    divrem(q.data(), r1_.data(), pow.data(), nn_ + 1, m_.data(), nn_);
    // R^2 = (R mod m)^2 mod m.
    std::vector<Limb> sqv(2 * nn_, 0);
    sqr(sqv.data(), r1_.data(), nn_);
    r2_.assign(nn_, 0);
    const std::size_t sn = normalized_size(sqv.data(), 2 * nn_);
    if (sn >= nn_) {
        divrem(q.data(), r2_.data(), sqv.data(), sn, m_.data(), nn_);
    } else {
        copy(r2_.data(), sqv.data(), sn);
    }

    if (use_cache) {
        support::OpValue value;
        value.parts.push_back(r1_);
        value.parts.push_back(r2_);
        value.scalars.push_back(n0inv_);
        cache.insert(key, std::move(value));
    }
}

void
MontCtx::redc(Limb* rp, Limb* tp) const
{
    // REDC is a full multiply-accumulate pass over the modulus —
    // announce it as a kernel multiplication (it runs on the
    // accelerator in the MPApca mapping, paper §V-C "Montgomery
    // reduction ... composed with ... multiplication").
    const OpScope scope(OpKind::Mul, nn_ * 64, nn_ * 64);
    // Word-by-word REDC: after nn rounds tp[nn..2nn) + carries is the
    // result, conditionally reduced below m.
    Limb carry = 0;
    for (std::size_t i = 0; i < nn_; ++i) {
        const Limb u = tp[i] * n0inv_;
        const Limb c = addmul_1(tp + i, m_.data(), nn_, u);
        // Accumulate the per-round carry into the running top.
        const Limb t = tp[i + nn_] + carry;
        const Limb c1 = t < carry;
        const Limb t2 = t + c;
        carry = c1 + (t2 < c);
        tp[i + nn_] = t2;
    }
    // Result = tp[nn..2nn) with a possible extra carry bit.
    if (carry || cmp_n(tp + nn_, m_.data(), nn_) >= 0) {
        const Limb borrow = sub_n(rp, tp + nn_, m_.data(), nn_);
        CAMP_ASSERT(borrow == carry);
    } else {
        copy(rp, tp + nn_, nn_);
    }
}

void
MontCtx::mul(Limb* rp, const Limb* ap, const Limb* bp) const
{
    std::vector<Limb> t(2 * nn_, 0);
    const std::size_t an = normalized_size(ap, nn_);
    const std::size_t bn = normalized_size(bp, nn_);
    if (an == 0 || bn == 0) {
        zero(rp, nn_);
        return;
    }
    {
        const OpScope scope(OpKind::Mul, an * 64, bn * 64);
        if (an >= bn)
            camp::mpn::mul(t.data(), ap, an, bp, bn);
        else
            camp::mpn::mul(t.data(), bp, bn, ap, an);
    }
    redc(rp, t.data());
}

void
MontCtx::to_mont(Limb* rp, const Limb* ap) const
{
    mul(rp, ap, r2_.data());
}

void
MontCtx::from_mont(Limb* rp, const Limb* ap) const
{
    std::vector<Limb> t(2 * nn_, 0);
    copy(t.data(), ap, nn_);
    redc(rp, t.data());
}

} // namespace camp::mpn
