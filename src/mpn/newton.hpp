/**
 * @file
 * Newton–Raphson reciprocal and division (paper §II-A lists
 * Newton-Raphson among the iterative methods the APC stack decomposes
 * high-level functions with). The reciprocal iteration
 *     x' = 2x - d*x^2 / 2^m
 * converges quadratically from a 64-bit seed; the quotient follows by
 * one multiplication and a bounded correction. This implementation
 * iterates at full precision (O(M(n) log n)) with an exact final
 * correction — the alternative fast-division route next to
 * Burnikel–Ziegler in div.cpp.
 */
#ifndef CAMP_MPN_NEWTON_HPP
#define CAMP_MPN_NEWTON_HPP

#include <cstdint>
#include <utility>

#include "mpn/natural.hpp"

namespace camp::mpn {

/**
 * Exact scaled reciprocal: floor(2^(bits(d) + extra) / d) for d > 0.
 * Newton iteration plus a final exact correction.
 */
Natural newton_reciprocal(const Natural& d, std::uint64_t extra);

/** Division with remainder via the Newton reciprocal; same contract as
 * Natural::divrem. */
std::pair<Natural, Natural> divrem_newton(const Natural& a,
                                          const Natural& d);

} // namespace camp::mpn

#endif // CAMP_MPN_NEWTON_HPP
