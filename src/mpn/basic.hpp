/**
 * @file
 * Basic O(n) natural-number kernels: copy, compare, add, subtract, shift,
 * and bitwise logic (Table I "Addition/Subtraction/Negation/Comparison"
 * class operators).
 */
#ifndef CAMP_MPN_BASIC_HPP
#define CAMP_MPN_BASIC_HPP

#include <cstddef>

#include "mpn/limb.hpp"

namespace camp::mpn {

/** Set rp[0..n) to zero. */
void zero(Limb* rp, std::size_t n);

/** Copy ap[0..n) to rp[0..n); regions may not partially overlap. */
void copy(Limb* rp, const Limb* ap, std::size_t n);

/** Strip high zero limbs: largest m <= n with ap[m-1] != 0 (0 if all 0). */
std::size_t normalized_size(const Limb* ap, std::size_t n);

/** Compare equal-size operands: -1, 0, or 1 as a <=> b. */
int cmp_n(const Limb* ap, const Limb* bp, std::size_t n);

/** Compare normalized operands of possibly different sizes. */
int cmp(const Limb* ap, std::size_t an, const Limb* bp, std::size_t bn);

/** rp = ap + bp over n limbs; returns carry (0/1). In-place allowed. */
Limb add_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n);

/** rp = ap + b (single limb); returns carry. In-place allowed. */
Limb add_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);

/** rp = ap + bp with an >= bn; returns carry. In-place allowed. */
Limb add(Limb* rp, const Limb* ap, std::size_t an,
         const Limb* bp, std::size_t bn);

/** rp = ap - bp over n limbs; returns borrow (0/1). In-place allowed. */
Limb sub_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n);

/** rp = ap - b (single limb); returns borrow. In-place allowed. */
Limb sub_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);

/** rp = ap - bp with an >= bn; returns borrow. In-place allowed. */
Limb sub(Limb* rp, const Limb* ap, std::size_t an,
         const Limb* bp, std::size_t bn);

/**
 * rp = ap << cnt for 0 < cnt < kLimbBits over n limbs; returns the bits
 * shifted out of the top. Operates high-to-low, so rp may equal ap or
 * point cnt-limbs above it.
 */
Limb lshift(Limb* rp, const Limb* ap, std::size_t n, unsigned cnt);

/**
 * rp = ap >> cnt for 0 < cnt < kLimbBits over n limbs; returns the bits
 * shifted out of the bottom (in the *high* bits of the returned limb).
 * Operates low-to-high, so rp may equal ap or point below it.
 */
Limb rshift(Limb* rp, const Limb* ap, std::size_t n, unsigned cnt);

/** rp = ap & bp / ap | bp / ap ^ bp over n limbs. In-place allowed. */
void and_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n);
void or_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n);
void xor_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n);

/** Number of significant bits of a normalized n-limb value (0 for 0). */
std::uint64_t bit_size(const Limb* ap, std::size_t n);

/** Value of bit @p idx (0 = LSB); idx may exceed n*64 (returns 0). */
bool get_bit(const Limb* ap, std::size_t n, std::uint64_t idx);

} // namespace camp::mpn

#endif // CAMP_MPN_BASIC_HPP
