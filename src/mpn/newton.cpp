#include "mpn/newton.hpp"

#include <stdexcept>

#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/opcache.hpp"

namespace camp::mpn {

namespace {

/** Newton iteration core: floor(2^(bits(d) + extra) / d) for a
 * non-power-of-two d with bits(d) > 64 and extra >= 64. */
Natural
reciprocal_iterate(const Natural& d, std::uint64_t extra)
{
    const std::uint64_t bits = d.bits();
    const std::uint64_t m = bits + extra;

    // 63-good-bit seed from the top 64 divisor bits (rounded up so the
    // seed under-approximates and the first iterations stay stable).
    const std::uint64_t dtop =
        (d >> (bits - 64)).to_uint64();
    const u128 seed128 =
        ((static_cast<u128>(1) << 127)) / (static_cast<u128>(dtop) + 1);
    // seed128 ~ 2^(63 + bits) / d; rescale to 2^m / d.
    Natural x = Natural(static_cast<std::uint64_t>(seed128 >> 64)) << 64 |
                Natural(static_cast<std::uint64_t>(seed128));
    CAMP_ASSERT(m >= bits + 63);
    x = x << (m - bits - 63);

    // Quadratic convergence: ~log2(m / 60) + 2 iterations suffice.
    const int iterations = ceil_log2(m / 60 + 2) + 2;
    for (int i = 0; i < iterations; ++i) {
        const Natural dxx = d * (x * x);
        const Natural two_x = x << 1;
        const Natural sub = dxx >> m;
        // x' = 2x - d x^2 / 2^m; clamp defensively (cannot underflow
        // once x underestimates, but the seed rounding is coarse).
        x = two_x > sub ? two_x - sub : Natural(1);
    }

    // Exact correction to the floor: 0 <= 2^m - d*x < d.
    const Natural pow = Natural(1) << m;
    Natural dx = d * x;
    int guard = 0;
    while (dx > pow) {
        // Overshoot: step down proportionally, then by ones.
        const Natural excess = (dx - pow) / d + Natural(1);
        x -= excess;
        dx = d * x;
        CAMP_ASSERT(++guard < 8);
    }
    guard = 0;
    while (pow - dx >= d) {
        const Natural deficit = (pow - dx) / d;
        x += deficit;
        dx = d * x;
        CAMP_ASSERT(++guard < 8);
    }
    return x;
}

} // namespace

Natural
newton_reciprocal(const Natural& d, std::uint64_t extra)
{
    if (d.is_zero())
        throw std::invalid_argument("newton_reciprocal: zero divisor");
    const std::uint64_t bits = d.bits();
    const std::uint64_t m = bits + extra;

    // A power-of-two divisor (including d == 1) has the exact
    // reciprocal 2^(m - (bits-1)) — no iteration, no division.
    if ((d & (d - Natural(1))).is_zero())
        return Natural(1) << (m - (bits - 1));

    // Small targets: direct division is cheaper than iterating (and
    // cheaper than a cache round-trip).
    if (extra < 64 || bits <= 64) {
        return ((Natural(1) << m) / d);
    }

    // Inverse cache: reciprocals are keyed by the divisor alone and
    // stored at the widest precision computed so far. A cached
    // floor(2^(bits+se)/d) with se >= extra yields this call's value
    // by an exact downshift — floor(floor(a/d) / 2^k) ==
    // floor(a / (d 2^k)) — so a hit is bit-identical to recomputing.
    support::OpCache& cache = support::OpCache::global();
    const bool use_cache = cache.enabled();
    support::OpKey key;
    if (use_cache) {
        key = support::make_key(support::OpTag::Reciprocal, d.limbs());
        if (const auto hit = cache.lookup(key)) {
            const std::uint64_t stored_extra = hit->scalars[0];
            if (stored_extra >= extra) {
                // Copy-on-return: the cached limbs stay immutable.
                Natural x = Natural::from_limbs(hit->parts[0]);
                return stored_extra == extra
                           ? x
                           : x >> (stored_extra - extra);
            }
        }
    }

    Natural x = reciprocal_iterate(d, extra);

    if (use_cache) {
        support::OpValue value;
        value.parts.push_back(x.limbs());
        value.scalars.push_back(extra);
        cache.insert(key, std::move(value));
    }
    return x;
}

std::pair<Natural, Natural>
divrem_newton(const Natural& a, const Natural& d)
{
    if (d.is_zero())
        throw std::invalid_argument("divrem_newton: division by zero");
    if (a < d)
        return {Natural(), a};
    // Power-of-two divisors (including d == 1) are a pure shift/mask;
    // the reciprocal route would build a 2^(bits(a)+3)-sized
    // intermediate only to shift it away again.
    if ((d & (d - Natural(1))).is_zero()) {
        const std::uint64_t k = d.bits() - 1;
        if (k == 0)
            return {a, Natural()}; // d == 1
        Natural q = a >> k;
        Natural r = a & ((Natural(1) << k) - Natural(1));
        return {std::move(q), std::move(r)};
    }
    const std::uint64_t extra = a.bits() - d.bits() + 3;
    const Natural x = newton_reciprocal(d, extra);
    Natural q = (a * x) >> (d.bits() + extra);
    Natural r = a - q * d; // x is a floor, so q never overestimates
    int guard = 0;
    while (r >= d) {
        q += Natural(1);
        r -= d;
        CAMP_ASSERT(++guard < 8);
    }
    return {std::move(q), std::move(r)};
}

} // namespace camp::mpn
