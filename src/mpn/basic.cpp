#include "mpn/basic.hpp"

#include <cstring>

#include "mpn/kernels/kernels.hpp"
#include "support/assert.hpp"

namespace camp::mpn {

void
zero(Limb* rp, std::size_t n)
{
    std::memset(rp, 0, n * sizeof(Limb));
}

void
copy(Limb* rp, const Limb* ap, std::size_t n)
{
    std::memmove(rp, ap, n * sizeof(Limb));
}

std::size_t
normalized_size(const Limb* ap, std::size_t n)
{
    while (n > 0 && ap[n - 1] == 0)
        --n;
    return n;
}

int
cmp_n(const Limb* ap, const Limb* bp, std::size_t n)
{
    for (std::size_t i = n; i-- > 0;) {
        if (ap[i] != bp[i])
            return ap[i] < bp[i] ? -1 : 1;
    }
    return 0;
}

int
cmp(const Limb* ap, std::size_t an, const Limb* bp, std::size_t bn)
{
    if (an != bn)
        return an < bn ? -1 : 1;
    return cmp_n(ap, bp, an);
}

Limb
add_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n)
{
    return kernels::active().add_n(rp, ap, bp, n);
}

Limb
add_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    for (std::size_t i = 0; i < n; ++i) {
        const Limb r = ap[i] + b;
        b = r < b;
        rp[i] = r;
        if (b == 0) {
            if (rp != ap)
                copy(rp + i + 1, ap + i + 1, n - i - 1);
            return 0;
        }
    }
    return b;
}

Limb
add(Limb* rp, const Limb* ap, std::size_t an, const Limb* bp, std::size_t bn)
{
    CAMP_ASSERT(an >= bn);
    Limb carry = add_n(rp, ap, bp, bn);
    if (an > bn)
        carry = add_1(rp + bn, ap + bn, an - bn, carry);
    return carry;
}

Limb
sub_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n)
{
    return kernels::active().sub_n(rp, ap, bp, n);
}

Limb
sub_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    for (std::size_t i = 0; i < n; ++i) {
        const Limb a = ap[i];
        rp[i] = a - b;
        b = a < b;
        if (b == 0) {
            if (rp != ap)
                copy(rp + i + 1, ap + i + 1, n - i - 1);
            return 0;
        }
    }
    return b;
}

Limb
sub(Limb* rp, const Limb* ap, std::size_t an, const Limb* bp, std::size_t bn)
{
    CAMP_ASSERT(an >= bn);
    Limb borrow = sub_n(rp, ap, bp, bn);
    if (an > bn)
        borrow = sub_1(rp + bn, ap + bn, an - bn, borrow);
    return borrow;
}

Limb
lshift(Limb* rp, const Limb* ap, std::size_t n, unsigned cnt)
{
    CAMP_ASSERT(n > 0 && cnt > 0 && cnt < kLimbBits);
    const unsigned tnc = kLimbBits - cnt;
    Limb high = ap[n - 1];
    const Limb out = high >> tnc;
    for (std::size_t i = n - 1; i > 0; --i) {
        const Limb low = ap[i - 1];
        rp[i] = (high << cnt) | (low >> tnc);
        high = low;
    }
    rp[0] = high << cnt;
    return out;
}

Limb
rshift(Limb* rp, const Limb* ap, std::size_t n, unsigned cnt)
{
    CAMP_ASSERT(n > 0 && cnt > 0 && cnt < kLimbBits);
    const unsigned tnc = kLimbBits - cnt;
    Limb low = ap[0];
    const Limb out = low << tnc;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const Limb high = ap[i + 1];
        rp[i] = (low >> cnt) | (high << tnc);
        low = high;
    }
    rp[n - 1] = low >> cnt;
    return out;
}

void
and_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        rp[i] = ap[i] & bp[i];
}

void
or_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        rp[i] = ap[i] | bp[i];
}

void
xor_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        rp[i] = ap[i] ^ bp[i];
}

std::uint64_t
bit_size(const Limb* ap, std::size_t n)
{
    n = normalized_size(ap, n);
    if (n == 0)
        return 0;
    return (n - 1) * static_cast<std::uint64_t>(kLimbBits) +
           camp::bit_length(ap[n - 1]);
}

bool
get_bit(const Limb* ap, std::size_t n, std::uint64_t idx)
{
    const std::size_t limb = static_cast<std::size_t>(idx / kLimbBits);
    if (limb >= n)
        return false;
    return (ap[limb] >> (idx % kLimbBits)) & 1;
}

} // namespace camp::mpn
