/**
 * @file
 * Optimization-oriented low-level operators. The paper's footnote 1
 * lists GMP operators its MPApca prototype lacks (AddMul, MulLo,
 * DivExact); this module provides them for the CPU substrate, plus
 * Lehmer's GCD which accelerates the rational layer.
 */
#ifndef CAMP_MPN_EXTRA_HPP
#define CAMP_MPN_EXTRA_HPP

#include <cstddef>

#include "mpn/limb.hpp"
#include "mpn/natural.hpp"

namespace camp::mpn {

/**
 * rp[0..n) = low n limbs of a * b (both n limbs). Karatsuba-style
 * recursion: one full half product + two recursive low products.
 * rp must not alias the inputs.
 */
void mullo_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n);

/**
 * Exact division: qp[0..an-dn+1) = ap / dp given that the division is
 * exact (remainder zero). Jebelean's LSB-first algorithm: no quotient
 * estimation, one modular inverse of the low divisor limb. Aborts (via
 * CAMP_ASSERT) if the division turns out inexact.
 * Requires an >= dn >= 1 and normalized dp.
 */
void divexact(Limb* qp, const Limb* ap, std::size_t an, const Limb* dp,
              std::size_t dn);

/**
 * Greatest common divisor via Lehmer's algorithm (double-limb leading
 * quotient batching with a cofactor matrix, Euclid fallback steps).
 * Asymptotically the same as Euclid but with O(1) big-number passes
 * per 64 quotient bits.
 */
Natural gcd_lehmer(Natural a, Natural b);

} // namespace camp::mpn

#endif // CAMP_MPN_EXTRA_HPP
