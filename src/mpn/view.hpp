/**
 * @file
 * LimbView: a non-owning, normalized span of limbs — the currency of
 * the zero-copy wave path (DESIGN.md §14). Where the exec plane used
 * to pass `Natural` values (each hop copying the limb vector), it now
 * passes views into arena-backed `exec::WaveBuffer` storage.
 *
 * Validity contract: a view borrows; it is valid exactly as long as
 * the buffer that produced it. For wave views that means until the
 * owning WaveBuffer is reset(), released, or destroyed — see the
 * lifetime rules in DESIGN.md §14. Debug builds poison released wave
 * ranges under ASan, so violating the contract is a hard failure
 * rather than silent corruption.
 */
#ifndef CAMP_MPN_VIEW_HPP
#define CAMP_MPN_VIEW_HPP

#include <cstddef>
#include <cstdint>

#include "mpn/limb.hpp"
#include "mpn/natural.hpp"
#include "support/bits.hpp"

namespace camp::mpn {

/**
 * Read-only view of a normalized little-endian limb sequence (no high
 * zero limbs; zero is {nullptr-or-anything, 0}). Trivially copyable.
 */
struct LimbView
{
    const Limb* ptr = nullptr;
    std::size_t len = 0;

    LimbView() = default;

    /** From a raw normalized run (caller guarantees no high zeros). */
    LimbView(const Limb* p, std::size_t n) : ptr(p), len(n) {}

    /** Borrow a Natural's storage (valid while the Natural lives and
     * is not reassigned). */
    explicit LimbView(const Natural& n) : ptr(n.data()), len(n.size()) {}

    bool is_zero() const { return len == 0; }
    std::size_t size() const { return len; }

    Limb
    limb(std::size_t i) const
    {
        return i < len ? ptr[i] : 0;
    }

    /** Significant bits (0 for zero); mirrors Natural::bits(). */
    std::uint64_t
    bits() const
    {
        if (len == 0)
            return 0;
        return static_cast<std::uint64_t>(len - 1) * kLimbBits +
               static_cast<std::uint64_t>(bit_length(ptr[len - 1]));
    }

    /** Deep copy into an owning value (the one sanctioned way to keep
     * limbs beyond the backing buffer's lifetime). */
    Natural
    to_natural() const
    {
        return Natural::from_limbs(
            std::vector<Limb>(ptr, ptr + len));
    }

    friend bool
    operator==(const LimbView& a, const LimbView& b)
    {
        if (a.len != b.len)
            return false;
        for (std::size_t i = 0; i < a.len; ++i)
            if (a.ptr[i] != b.ptr[i])
                return false;
        return true;
    }
};

/** Normalize a raw run (drop high zero limbs) into a view. */
inline LimbView
normalized_view(const Limb* ptr, std::size_t len)
{
    while (len > 0 && ptr[len - 1] == 0)
        --len;
    return LimbView(ptr, len);
}

} // namespace camp::mpn

#endif // CAMP_MPN_VIEW_HPP
