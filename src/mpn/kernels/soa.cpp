/**
 * @file
 * SoA batch driver: shape-group independent products, transpose full
 * groups into digit-sliced lanes, run the active tier's vertical
 * carry-save kernel, and resolve each lane back to normalized limbs.
 * The transpose/resolution passes are O(n) per lane; the O(n^2)
 * column work is what vectorizes across lanes.
 */
#include "mpn/kernels/soa.hpp"

#include <algorithm>
#include <cstring>

#include "mpn/kernels/kernels.hpp"
#include "mpn/mul.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace camp::mpn::kernels {

namespace {

/**
 * Multiply one full group of W same-shape products via the vertical
 * kernel, writing the full (an + bn)-limb product of lane l into
 * rps[l]. aps/bps/rps are per-lane limb runs with an >= bn >= 1,
 * an <= kSoaMaxLimbs, every result area disjoint from every operand.
 */
void
soa_group_core(const KernelTable& table, std::size_t an, std::size_t bn,
               const Limb* const* aps, const Limb* const* bps,
               Limb* const* rps)
{
    const std::size_t w = table.soa_width;
    const std::size_t nda = 2 * an;
    const std::size_t ndb = 2 * bn;
    const std::size_t ncols = nda + ndb;

    support::ScratchFrame frame;
    std::uint64_t* da = frame.alloc(nda * w);
    std::uint64_t* db = frame.alloc(ndb * w);
    std::uint64_t* acc_lo = frame.alloc(ncols * w);
    std::uint64_t* acc_hi = frame.alloc(ncols * w);

    // Transpose to digit-major SoA: da[d * w + lane] is lane's
    // radix-2^32 digit d.
    for (std::size_t lane = 0; lane < w; ++lane) {
        for (std::size_t m = 0; m < an; ++m) {
            const Limb limb = aps[lane][m];
            da[(2 * m) * w + lane] = limb & 0xffffffffULL;
            da[(2 * m + 1) * w + lane] = limb >> 32;
        }
        for (std::size_t m = 0; m < bn; ++m) {
            const Limb limb = bps[lane][m];
            db[(2 * m) * w + lane] = limb & 0xffffffffULL;
            db[(2 * m + 1) * w + lane] = limb >> 32;
        }
    }

    table.soa_vertical(acc_lo, acc_hi, da, nda, db, ndb);

    // Resolve: column c of lane l is acc_lo[c][l] + acc_hi[c-1][l]
    // plus the lane's radix-2^32 ripple carry; pack digit pairs back
    // into limbs. Lanes are independent, so the compiler is free to
    // vectorize this loop too.
    std::uint64_t* carry = frame.alloc(w);
    std::uint64_t* hi_prev = frame.alloc(w);
    std::memset(carry, 0, w * sizeof(*carry));
    std::memset(hi_prev, 0, w * sizeof(*hi_prev));
    for (std::size_t lane = 0; lane < w; ++lane)
        std::memset(rps[lane], 0, (an + bn) * sizeof(Limb));
    for (std::size_t c = 0; c < ncols; ++c) {
        for (std::size_t lane = 0; lane < w; ++lane) {
            const std::uint64_t v =
                acc_lo[c * w + lane] + hi_prev[lane] + carry[lane];
            hi_prev[lane] = acc_hi[c * w + lane];
            carry[lane] = v >> 32;
            const std::uint64_t dig = v & 0xffffffffULL;
            rps[lane][c / 2] |= dig << (32 * (c & 1));
        }
    }
    for (std::size_t lane = 0; lane < w; ++lane)
        CAMP_ASSERT(carry[lane] == 0 && hi_prev[lane] == 0);
}

/**
 * Natural-facing wrapper: allocate each lane's result vector (counted
 * in mpn.alloc.count like any product buffer), run the shared group
 * core, and hand the vectors to the output Naturals. idx[0..W) are
 * indices into pairs/out; every pair has the same (an, bn) shape.
 */
void
soa_group(const KernelTable& table, const std::size_t* idx,
          std::size_t an, std::size_t bn,
          const std::pair<Natural, Natural>* pairs, Natural* out)
{
    const std::size_t w = table.soa_width;
    CAMP_ASSERT(w <= 8);
    const Limb* aps[8];
    const Limb* bps[8];
    Limb* rps[8];
    std::vector<std::vector<Limb>> limbs(w);
    for (std::size_t lane = 0; lane < w; ++lane) {
        const auto& pr = pairs[idx[lane]];
        const bool swap = pr.first.size() < pr.second.size();
        const Natural& a = swap ? pr.second : pr.first;
        const Natural& b = swap ? pr.first : pr.second;
        CAMP_ASSERT(a.size() == an && b.size() == bn);
        aps[lane] = a.data();
        bps[lane] = b.data();
        limbs[lane].resize(an + bn);
        rps[lane] = limbs[lane].data();
    }
    support::metrics::counter("mpn.alloc.count").add(w);
    soa_group_core(table, an, bn, aps, bps, rps);
    for (std::size_t lane = 0; lane < w; ++lane)
        out[idx[lane]] = Natural::from_limbs(std::move(limbs[lane]));
}

} // namespace

std::size_t
soa_mul_batch(const std::pair<Natural, Natural>* pairs,
              std::size_t count, Natural* out)
{
    const KernelTable& table = active();
    const std::size_t w = table.soa_width;

    // Shape-sorted index order; ineligible pairs get the sentinel key
    // and collect at the end for the per-product path.
    constexpr std::uint64_t kIneligible = ~std::uint64_t{0};
    std::vector<std::pair<std::uint64_t, std::size_t>> order;
    order.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t an =
            std::max(pairs[i].first.size(), pairs[i].second.size());
        const std::size_t bn =
            std::min(pairs[i].first.size(), pairs[i].second.size());
        const bool eligible = w != 0 && table.soa_vertical != nullptr &&
                              bn >= 1 && an <= kSoaMaxLimbs;
        order.emplace_back(eligible ? (static_cast<std::uint64_t>(an)
                                       << 32) |
                                          bn
                                    : kIneligible,
                           i);
    }
    std::sort(order.begin(), order.end());

    std::size_t via_soa = 0;
    std::size_t pos = 0;
    while (pos < count) {
        const std::uint64_t key = order[pos].first;
        std::size_t end = pos;
        while (end < count && order[end].first == key)
            ++end;
        if (key != kIneligible) {
            const std::size_t an = key >> 32;
            const std::size_t bn = key & 0xffffffffULL;
            std::size_t idx[8]; // soa_width is 2 or 4 today
            CAMP_ASSERT(w <= 8);
            while (pos + w <= end) {
                for (std::size_t lane = 0; lane < w; ++lane)
                    idx[lane] = order[pos + lane].second;
                soa_group(table, idx, an, bn, pairs, out);
                via_soa += w;
                pos += w;
            }
        }
        // Remainder lanes and ineligible pairs: per-product path.
        for (; pos < end; ++pos) {
            const std::size_t i = order[pos].second;
            out[i] = pairs[i].first * pairs[i].second;
        }
    }
    if (via_soa)
        support::metrics::counter("mpn.soa.products").add(via_soa);
    return via_soa;
}

std::size_t
soa_mul_batch(const std::vector<std::pair<Natural, Natural>>& pairs,
              std::vector<Natural>& out)
{
    CAMP_ASSERT(out.size() == pairs.size());
    return soa_mul_batch(pairs.data(), pairs.size(), out.data());
}

std::size_t
soa_mul_batch_raw(SoaItem* items, std::size_t count)
{
    const KernelTable& table = active();
    const std::size_t w = table.soa_width;

    // Canonical operand order (the product is symmetric): ap is the
    // larger run, so shapes group exactly like the Natural driver's.
    for (std::size_t i = 0; i < count; ++i)
        if (items[i].an < items[i].bn) {
            std::swap(items[i].ap, items[i].bp);
            std::swap(items[i].an, items[i].bn);
        }

    constexpr std::uint64_t kIneligible = ~std::uint64_t{0};
    std::vector<std::pair<std::uint64_t, std::size_t>> order;
    order.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const bool eligible = w != 0 && table.soa_vertical != nullptr &&
                              items[i].bn >= 1 &&
                              items[i].an <= kSoaMaxLimbs;
        order.emplace_back(
            eligible
                ? (static_cast<std::uint64_t>(items[i].an) << 32) |
                      items[i].bn
                : kIneligible,
            i);
    }
    std::sort(order.begin(), order.end());

    std::size_t via_soa = 0;
    std::size_t pos = 0;
    while (pos < count) {
        const std::uint64_t key = order[pos].first;
        std::size_t end = pos;
        while (end < count && order[end].first == key)
            ++end;
        if (key != kIneligible) {
            const std::size_t an = key >> 32;
            const std::size_t bn = key & 0xffffffffULL;
            CAMP_ASSERT(w <= 8);
            const Limb* aps[8];
            const Limb* bps[8];
            Limb* rps[8];
            while (pos + w <= end) {
                for (std::size_t lane = 0; lane < w; ++lane) {
                    SoaItem& item = items[order[pos + lane].second];
                    aps[lane] = item.ap;
                    bps[lane] = item.bp;
                    rps[lane] = item.rp;
                }
                soa_group_core(table, an, bn, aps, bps, rps);
                for (std::size_t lane = 0; lane < w; ++lane) {
                    SoaItem& item = items[order[pos + lane].second];
                    std::size_t rn = an + bn;
                    while (rn > 0 && item.rp[rn - 1] == 0)
                        --rn;
                    item.rn = rn;
                }
                via_soa += w;
                pos += w;
            }
        }
        // Remainder lanes and ineligible items: the ordinary dispatched
        // kernel, straight into the caller's slot — still no product
        // allocation.
        for (; pos < end; ++pos) {
            SoaItem& item = items[order[pos].second];
            if (item.bn == 0) {
                item.rn = 0;
                continue;
            }
            mul(item.rp, item.ap, item.an, item.bp, item.bn);
            std::size_t rn = item.an + item.bn;
            while (rn > 0 && item.rp[rn - 1] == 0)
                --rn;
            item.rn = rn;
        }
    }
    if (via_soa)
        support::metrics::counter("mpn.soa.products").add(via_soa);
    return via_soa;
}

} // namespace camp::mpn::kernels
