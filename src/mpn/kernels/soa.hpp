/**
 * @file
 * Struct-of-arrays batch multiplication for the small-width regime:
 * groups of same-shape independent products are transposed into
 * digit-sliced SoA form (lane = product, vector = one radix-2^32
 * digit column across lanes) and multiplied by one vertical
 * vectorized basecase, amortizing dispatch, allocation, and carry
 * logic across the whole group. This is the exec-plane entry point
 * Device::mul_batch feeds coalesced waves into.
 */
#ifndef CAMP_MPN_KERNELS_SOA_HPP
#define CAMP_MPN_KERNELS_SOA_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "mpn/natural.hpp"

namespace camp::mpn::kernels {

/**
 * Largest operand size (limbs) the SoA basecase accepts; above this
 * the per-product Karatsuba path wins and lanes fall back to it.
 */
constexpr std::size_t kSoaMaxLimbs = 64;

/**
 * Multiply @p count independent products out[i] = pairs[i].first *
 * pairs[i].second. Pairs whose shapes can be grouped into full
 * SIMD-width lanes inside the eligibility window run through the
 * vertical SoA kernel of the active tier; everything else (odd
 * remainders, oversize or zero operands, scalar tier) takes the
 * ordinary per-product path. Results are bit-identical either way.
 *
 * Returns the number of products computed via the SoA kernel
 * (0 when the active tier has none).
 */
std::size_t
soa_mul_batch(const std::pair<Natural, Natural>* pairs,
              std::size_t count, Natural* out);

/** Convenience overload over whole vectors (sizes must match). */
std::size_t
soa_mul_batch(const std::vector<std::pair<Natural, Natural>>& pairs,
              std::vector<Natural>& out);

/**
 * One product of the raw (zero-copy) batch driver: operand limb runs
 * must be normalized (no high zero limbs; zero = length 0) and @p rp
 * must point at @p an + @p bn writable limbs, disjoint from both
 * operands, whenever both operands are nonzero. The driver writes the
 * product into rp and sets @p rn to its normalized length (0 for a
 * zero product). The exec plane's wave path (Device::mul_batch_wave)
 * points rp straight into WaveBuffer result slots, so a batch
 * multiplies with no per-product allocation at all.
 */
struct SoaItem
{
    const Limb* ap = nullptr;
    std::size_t an = 0;
    const Limb* bp = nullptr;
    std::size_t bn = 0;
    Limb* rp = nullptr;
    std::size_t rn = 0; ///< out: significant product limbs
};

/**
 * Raw-pointer twin of soa_mul_batch over wave-owned storage: same
 * grouping, same vertical kernels, bit-identical products — but
 * results land in the caller's preallocated slots instead of fresh
 * Natural vectors. Operand order within an item may be swapped in
 * place (the product is symmetric). Returns the number of products
 * computed via the SoA kernel.
 */
std::size_t soa_mul_batch_raw(SoaItem* items, std::size_t count);

} // namespace camp::mpn::kernels

#endif // CAMP_MPN_KERNELS_SOA_HPP
