/**
 * @file
 * Kernel tier selection: cpuid probe + CAMP_SIMD override, resolved
 * once on first use into an atomic table pointer. The probe order is
 * widest-first (avx2 > sse4 > scalar); an explicit CAMP_SIMD request
 * for a tier the host cannot run logs a notice to stderr and falls
 * back to scalar rather than silently running a different tier.
 * The selected tier is exported as the "mpn.simd.tier" gauge
 * (0 = scalar, 1 = sse4, 2 = avx2) so traces and bench output can
 * attribute numbers to the code actually executed.
 */
#include "mpn/kernels/internal.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/metrics.hpp"

namespace camp::mpn::kernels {

namespace {

bool
cpu_has(Tier tier)
{
#if CAMP_KERNELS_X86
    switch (tier) {
    case Tier::Scalar:
        return true;
    case Tier::Sse4:
        return __builtin_cpu_supports("sse4.2");
    case Tier::Avx2:
        return __builtin_cpu_supports("avx2");
    }
    return false;
#else
    return tier == Tier::Scalar;
#endif
}

void
publish_tier(const KernelTable* table)
{
    support::metrics::gauge("mpn.simd.tier")
        .set(static_cast<int>(table->tier));
}

/** Resolve CAMP_SIMD + cpuid into the table to run. */
const KernelTable*
probe()
{
    const char* env = std::getenv("CAMP_SIMD");
    if (env && *env && std::strcmp(env, "auto") != 0) {
        const KernelTable* requested = nullptr;
        if (std::strcmp(env, "avx2") == 0)
            requested = host_supports(Tier::Avx2) ? avx2_table()
                                                  : nullptr;
        else if (std::strcmp(env, "sse4") == 0)
            requested = host_supports(Tier::Sse4) ? sse4_table()
                                                  : nullptr;
        else if (std::strcmp(env, "scalar") == 0)
            requested = &scalar_table();
        else
            std::fprintf(stderr,
                         "camp: unknown CAMP_SIMD=\"%s\" "
                         "(want auto|avx2|sse4|scalar); "
                         "using scalar kernels\n",
                         env);
        if (!requested && (std::strcmp(env, "avx2") == 0 ||
                           std::strcmp(env, "sse4") == 0))
            std::fprintf(stderr,
                         "camp: CAMP_SIMD=%s requested but host lacks "
                         "the ISA; falling back to scalar kernels\n",
                         env);
        return requested ? requested : &scalar_table();
    }
    if (const KernelTable* t =
            host_supports(Tier::Avx2) ? avx2_table() : nullptr)
        return t;
    if (const KernelTable* t =
            host_supports(Tier::Sse4) ? sse4_table() : nullptr)
        return t;
    return &scalar_table();
}

std::atomic<const KernelTable*>&
active_slot()
{
    static std::atomic<const KernelTable*> slot{nullptr};
    return slot;
}

} // namespace

const char*
tier_name(Tier tier)
{
    switch (tier) {
    case Tier::Scalar:
        return "scalar";
    case Tier::Sse4:
        return "sse4";
    case Tier::Avx2:
        return "avx2";
    }
    return "unknown";
}

bool
host_supports(Tier tier)
{
    return cpu_has(tier);
}

const KernelTable*
table_for(Tier tier)
{
    switch (tier) {
    case Tier::Scalar:
        return &scalar_table();
    case Tier::Sse4:
        return host_supports(Tier::Sse4) ? sse4_table() : nullptr;
    case Tier::Avx2:
        return host_supports(Tier::Avx2) ? avx2_table() : nullptr;
    }
    return nullptr;
}

const KernelTable&
active()
{
    std::atomic<const KernelTable*>& slot = active_slot();
    const KernelTable* table = slot.load(std::memory_order_acquire);
    if (!table) {
        table = probe();
        const KernelTable* expected = nullptr;
        if (slot.compare_exchange_strong(expected, table,
                                         std::memory_order_acq_rel))
            publish_tier(table);
        else
            table = expected; // another thread won the race
    }
    return *table;
}

Tier
active_tier()
{
    return active().tier;
}

bool
set_active_tier(Tier tier)
{
    const KernelTable* table = table_for(tier);
    if (!table)
        return false;
    active_slot().store(table, std::memory_order_release);
    publish_tier(table);
    return true;
}

} // namespace camp::mpn::kernels
