/**
 * @file
 * AVX2 tier: 4x64-bit lanes. Three kernel families:
 *
 *  - add_n / sub_n: lanewise add plus the movemask carry-select
 *    trick — generate/propagate bits are extracted to a 4-bit mask,
 *    the ripple is resolved with one scalar integer add
 *    (C = (P + (G<<1|cin)) ^ P), and the per-lane carries are
 *    re-injected from a 16-entry vector table. This replaces the
 *    per-limb flag chain with one short scalar op per 4 limbs.
 *
 *  - mul_1 / addmul_1 / submul_1: two-pass split-radix scheme. Pass 1
 *    assembles the 128-bit products a[i]*b lanewise from four
 *    32x32->64 vpmuludq partials into lo/hi scratch arrays (no carry
 *    chain at all); pass 2 is a single scalar fold of
 *    rp[i] (+/-)= lo[i] + hi[i-1] with the usual ripple.
 *
 *  - mul_basecase / soa_vertical: the reduced-radix carry-save
 *    kernels. Operands are expanded to radix-2^32 digits; every
 *    32x32 partial product is accumulated into a *pair* of 64-bit
 *    per-column sums (low and high halves separately), so columns
 *    never carry during accumulation — each term is < 2^32, leaving
 *    32 bits of carry-save headroom per column. mul_basecase keeps
 *    the accumulators of 4 adjacent columns in registers (diagonal
 *    walk over the product trapezoid); soa_vertical keeps one column
 *    of 4 *independent products* per register (vertical batch form).
 *    One O(n) resolution pass converts columns back to 64-bit limbs.
 *
 * Everything here is exact integer arithmetic: results are
 * bit-identical to the scalar tier by construction, and
 * tests/test_simd_kernels.cpp fuzzes that invariant.
 */
#include "mpn/kernels/internal.hpp"

#if CAMP_KERNELS_X86 && defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/thread_pool.hpp"

namespace camp::mpn::kernels {

namespace {

/** Below this many limbs the vector setup costs more than it saves. */
constexpr std::size_t kVecMinLimbs = 8;

/**
 * Smaller-operand floor for the column-accumulated basecase. Below
 * this the scalar mulx/adc chain wins (measured crossover ~48 limbs
 * on Skylake-class cores: pmuludq needs 4 32x32 partials plus 4 ALU
 * support ops per limb product, scalar needs one mulx + two adds);
 * the Karatsuba threshold keeps mpn_mul's own basecases below it, so
 * this path serves direct large-basecase callers only.
 */
constexpr std::size_t kBasecaseMinLimbs = 48;

/** kCarry4[m][lane] = bit `lane` of m, as an addable 64-bit value. */
alignas(32) constexpr std::uint64_t kCarry4[16][4] = {
    {0, 0, 0, 0}, {1, 0, 0, 0}, {0, 1, 0, 0}, {1, 1, 0, 0},
    {0, 0, 1, 0}, {1, 0, 1, 0}, {0, 1, 1, 0}, {1, 1, 1, 0},
    {0, 0, 0, 1}, {1, 0, 0, 1}, {0, 1, 0, 1}, {1, 1, 0, 1},
    {0, 0, 1, 1}, {1, 0, 1, 1}, {0, 1, 1, 1}, {1, 1, 1, 1},
};

inline __m256i
loadu(const Limb* p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void
storeu(Limb* p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/** Lanewise unsigned x < y (all-ones mask where true). */
inline __m256i
lt_u64(__m256i x, __m256i y)
{
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    return _mm256_cmpgt_epi64(_mm256_xor_si256(y, bias),
                              _mm256_xor_si256(x, bias));
}

/** Sign bits of the 4 lanes as a 4-bit mask. */
inline unsigned
lane_mask(__m256i v)
{
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(v)));
}

/**
 * Pass 1 of the split-radix multiply: lo[i]/hi[i] = the 128-bit
 * product ap[i] * b, for i in [0, n4) with n4 a multiple of 4.
 */
inline void
mul_lohi(const Limb* ap, std::size_t n4, Limb b, Limb* lo, Limb* hi)
{
    const __m256i m32 = _mm256_set1_epi64x(0xffffffffLL);
    const __m256i vb0 =
        _mm256_set1_epi64x(static_cast<long long>(b & 0xffffffffULL));
    const __m256i vb1 =
        _mm256_set1_epi64x(static_cast<long long>(b >> 32));
    for (std::size_t i = 0; i < n4; i += 4) {
        const __m256i va = loadu(ap + i);
        const __m256i alo = _mm256_and_si256(va, m32);
        const __m256i ahi = _mm256_srli_epi64(va, 32);
        const __m256i ll = _mm256_mul_epu32(alo, vb0);
        const __m256i lh = _mm256_mul_epu32(alo, vb1);
        const __m256i hl = _mm256_mul_epu32(ahi, vb0);
        const __m256i hh = _mm256_mul_epu32(ahi, vb1);
        // product = ll + 2^32*(lh + hl) + 2^64*hh; lh + hl may carry
        // into bit 64 (worth 2^96), and folding the mid word into ll
        // may carry into bit 64 too.
        const __m256i mid = _mm256_add_epi64(lh, hl);
        const __m256i midc =
            _mm256_slli_epi64(_mm256_srli_epi64(lt_u64(mid, lh), 63),
                              32);
        const __m256i vlo =
            _mm256_add_epi64(ll, _mm256_slli_epi64(mid, 32));
        const __m256i c2 = lt_u64(vlo, ll); // all-ones == -1
        __m256i vhi = _mm256_add_epi64(hh, _mm256_srli_epi64(mid, 32));
        vhi = _mm256_add_epi64(vhi, midc);
        vhi = _mm256_sub_epi64(vhi, c2);
        storeu(lo + i, vlo);
        storeu(hi + i, vhi);
    }
}

} // namespace

Limb
avx2_add_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n)
{
    std::size_t i = 0;
    Limb carry = 0;
    if (n >= kVecMinLimbs) {
        const __m256i ones = _mm256_set1_epi64x(-1LL);
        unsigned cin = 0;
        for (; i + 4 <= n; i += 4) {
            const __m256i va = loadu(ap + i);
            const __m256i vs = _mm256_add_epi64(va, loadu(bp + i));
            const unsigned g = lane_mask(lt_u64(vs, va));
            const unsigned p =
                lane_mask(_mm256_cmpeq_epi64(vs, ones));
            const unsigned c = (p + ((g << 1) | cin)) ^ p;
            cin = (c >> 4) & 1;
            const __m256i vc = _mm256_load_si256(
                reinterpret_cast<const __m256i*>(kCarry4[c & 15]));
            storeu(rp + i, _mm256_add_epi64(vs, vc));
        }
        carry = cin;
    }
    for (; i < n; ++i) {
        const Limb a = ap[i];
        const Limb s = a + bp[i];
        const Limb c1 = s < a;
        const Limb r = s + carry;
        carry = c1 | (r < s);
        rp[i] = r;
    }
    return carry;
}

Limb
avx2_sub_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n)
{
    std::size_t i = 0;
    Limb borrow = 0;
    if (n >= kVecMinLimbs) {
        const __m256i zero = _mm256_setzero_si256();
        unsigned bin = 0;
        for (; i + 4 <= n; i += 4) {
            const __m256i va = loadu(ap + i);
            const __m256i vb = loadu(bp + i);
            const __m256i vd = _mm256_sub_epi64(va, vb);
            const unsigned g = lane_mask(lt_u64(va, vb));
            const unsigned p =
                lane_mask(_mm256_cmpeq_epi64(vd, zero));
            const unsigned c = (p + ((g << 1) | bin)) ^ p;
            bin = (c >> 4) & 1;
            const __m256i vc = _mm256_load_si256(
                reinterpret_cast<const __m256i*>(kCarry4[c & 15]));
            storeu(rp + i, _mm256_sub_epi64(vd, vc));
        }
        borrow = bin;
    }
    for (; i < n; ++i) {
        const Limb a = ap[i];
        const Limb b = bp[i];
        const Limb d = a - b;
        const Limb b1 = a < b;
        const Limb r = d - borrow;
        borrow = b1 | (d < borrow);
        rp[i] = r;
    }
    return borrow;
}

Limb
avx2_mul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    if (n < kVecMinLimbs)
        return scalar_mul_1(rp, ap, n, b);
    const std::size_t n4 = n & ~std::size_t{3};
    support::ScratchFrame frame;
    Limb* lo = frame.alloc(2 * n4);
    Limb* hi = lo + n4;
    mul_lohi(ap, n4, b, lo, hi);
    Limb carry = 0;
    Limb hprev = 0;
    for (std::size_t i = 0; i < n4; ++i) {
        const u128 t = static_cast<u128>(lo[i]) + hprev + carry;
        rp[i] = static_cast<Limb>(t);
        carry = static_cast<Limb>(t >> 64);
        hprev = hi[i];
    }
    carry += hprev;
    for (std::size_t i = n4; i < n; ++i) {
        const u128 p = static_cast<u128>(ap[i]) * b + carry;
        rp[i] = static_cast<Limb>(p);
        carry = static_cast<Limb>(p >> 64);
    }
    return carry;
}

Limb
avx2_addmul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    if (n < kVecMinLimbs)
        return scalar_addmul_1(rp, ap, n, b);
    const std::size_t n4 = n & ~std::size_t{3};
    support::ScratchFrame frame;
    Limb* lo = frame.alloc(2 * n4);
    Limb* hi = lo + n4;
    mul_lohi(ap, n4, b, lo, hi);
    Limb carry = 0;
    Limb hprev = 0;
    for (std::size_t i = 0; i < n4; ++i) {
        const u128 t =
            static_cast<u128>(rp[i]) + lo[i] + hprev + carry;
        rp[i] = static_cast<Limb>(t);
        carry = static_cast<Limb>(t >> 64);
        hprev = hi[i];
    }
    carry += hprev;
    for (std::size_t i = n4; i < n; ++i) {
        const u128 p = static_cast<u128>(ap[i]) * b + rp[i] + carry;
        rp[i] = static_cast<Limb>(p);
        carry = static_cast<Limb>(p >> 64);
    }
    return carry;
}

Limb
avx2_submul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    if (n < kVecMinLimbs)
        return scalar_submul_1(rp, ap, n, b);
    const std::size_t n4 = n & ~std::size_t{3};
    support::ScratchFrame frame;
    Limb* lo = frame.alloc(2 * n4);
    Limb* hi = lo + n4;
    mul_lohi(ap, n4, b, lo, hi);
    // Fold the product digit stream (m = lo[i] + hi[i-1] with its own
    // ripple) and the subtraction borrow chain in one pass; the final
    // borrow hi[n4-1] + c + borrow is exact (bounded by B - 1).
    Limb c = 0;
    Limb hprev = 0;
    Limb borrow = 0;
    for (std::size_t i = 0; i < n4; ++i) {
        const u128 t = static_cast<u128>(lo[i]) + hprev + c;
        const Limb m = static_cast<Limb>(t);
        c = static_cast<Limb>(t >> 64);
        hprev = hi[i];
        const Limb r = rp[i];
        const Limb d = r - m;
        const Limb b1 = r < m;
        rp[i] = d - borrow;
        borrow = b1 | (d < borrow);
    }
    borrow += hprev + c;
    for (std::size_t i = n4; i < n; ++i) {
        const u128 p = static_cast<u128>(ap[i]) * b + borrow;
        const Limb lo_limb = static_cast<Limb>(p);
        borrow =
            static_cast<Limb>(p >> 64) + (rp[i] < lo_limb);
        rp[i] -= lo_limb;
    }
    return borrow;
}

void
avx2_mul_basecase(Limb* rp, const Limb* ap, std::size_t an,
                  const Limb* bp, std::size_t bn)
{
    CAMP_ASSERT(an >= bn && bn >= 1);
    if (bn < kBasecaseMinLimbs) {
        scalar_mul_basecase(rp, ap, an, bp, bn);
        return;
    }
    support::ScratchFrame frame;
    const std::size_t nda = 2 * an;
    const std::size_t ndb = 2 * bn;
    const std::size_t ncols = nda + ndb;

    // Radix-2^32 digits of a, padded with 4 zero digits on both ends
    // so the diagonal loads below never read out of range.
    std::uint64_t* da_store = frame.alloc(nda + 8);
    std::uint64_t* da = da_store + 4;
    for (int t = 0; t < 4; ++t) {
        da[-1 - t] = 0;
        da[nda + t] = 0;
    }
    for (std::size_t m = 0; m < an; ++m) {
        da[2 * m] = ap[m] & 0xffffffffULL;
        da[2 * m + 1] = ap[m] >> 32;
    }
    std::uint64_t* db = frame.alloc(ndb);
    for (std::size_t m = 0; m < bn; ++m) {
        db[2 * m] = bp[m] & 0xffffffffULL;
        db[2 * m + 1] = bp[m] >> 32;
    }

    const __m256i m32 = _mm256_set1_epi64x(0xffffffffLL);
    std::uint64_t carry = 0;
    std::uint64_t hi_prev = 0; // accHi of the previous column
    alignas(32) std::uint64_t col_lo[4];
    alignas(32) std::uint64_t col_hi[4];
    for (std::size_t k = 0; k < ncols; k += 4) {
        // Columns k..k+3 accumulate products da[c - j] * db[j]; the
        // union of in-range j over the 4 lanes is [jmin, jmax], and
        // the zero padding of da absorbs the per-lane edges.
        const std::size_t jmin = k + 1 > nda ? k + 1 - nda : 0;
        const std::size_t jmax = std::min(ndb - 1, k + 3);
        __m256i vlo = _mm256_setzero_si256();
        __m256i vhi = _mm256_setzero_si256();
        for (std::size_t j = jmin; j <= jmax; ++j) {
            const __m256i vb = _mm256_set1_epi64x(
                static_cast<long long>(db[j]));
            const __m256i vda = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(
                    da + static_cast<std::ptrdiff_t>(k) -
                    static_cast<std::ptrdiff_t>(j)));
            const __m256i p = _mm256_mul_epu32(vda, vb);
            vlo = _mm256_add_epi64(vlo, _mm256_and_si256(p, m32));
            vhi = _mm256_add_epi64(vhi, _mm256_srli_epi64(p, 32));
        }
        _mm256_store_si256(reinterpret_cast<__m256i*>(col_lo), vlo);
        _mm256_store_si256(reinterpret_cast<__m256i*>(col_hi), vhi);
        // Resolve the block's columns (ncols is even but not
        // necessarily a multiple of 4 — never write past rp):
        // column c = col_lo[c] + accHi[c-1] plus the running
        // radix-2^32 ripple carry.
        for (int t = 0; t < 4 && k + t < ncols; ++t) {
            const std::size_t c = k + t;
            const std::uint64_t v = col_lo[t] + hi_prev + carry;
            hi_prev = col_hi[t];
            carry = v >> 32;
            const std::uint64_t dig = v & 0xffffffffULL;
            if ((c & 1) == 0)
                rp[c / 2] = dig;
            else
                rp[c / 2] |= dig << 32;
        }
    }
    CAMP_ASSERT(carry == 0 && hi_prev == 0);
}

void
avx2_soa_vertical(std::uint64_t* acc_lo, std::uint64_t* acc_hi,
                  const std::uint64_t* da, std::size_t nda,
                  const std::uint64_t* db, std::size_t ndb)
{
    // 4 independent products, one per lane; vectors are whole columns.
    // Output column c sums da[c - j] * db[j] over in-range j. Columns
    // are processed in pairs so each loaded db column feeds two
    // multiply-accumulates (the load is the scarce resource here —
    // SoA lanes can't broadcast, every operand differs per lane).
    const __m256i m32 = _mm256_set1_epi64x(0xffffffffLL);
    const std::size_t ncols = nda + ndb;
    std::size_t c = 0;
    for (; c + 2 <= ncols; c += 2) {
        const std::size_t jmin0 = c + 1 > nda ? c + 1 - nda : 0;
        const std::size_t jmax0 = std::min(ndb - 1, c);
        const std::size_t jmin1 = c + 2 > nda ? c + 2 - nda : 0;
        const std::size_t jmax1 = std::min(ndb - 1, c + 1);
        __m256i lo0 = _mm256_setzero_si256();
        __m256i hi0 = _mm256_setzero_si256();
        __m256i lo1 = _mm256_setzero_si256();
        __m256i hi1 = _mm256_setzero_si256();
        if (jmin0 < jmin1 && jmin0 <= jmax0) {
            // j = jmin0 reaches only column c.
            const __m256i p = _mm256_mul_epu32(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                    da + 4 * (c - jmin0))),
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                    db + 4 * jmin0)));
            lo0 = _mm256_add_epi64(lo0, _mm256_and_si256(p, m32));
            hi0 = _mm256_add_epi64(hi0, _mm256_srli_epi64(p, 32));
        }
        for (std::size_t j = jmin1; j <= jmax0; ++j) {
            const __m256i vdb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(db + 4 * j));
            const std::size_t i = c - j;
            const __m256i p0 = _mm256_mul_epu32(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(da + 4 * i)),
                vdb);
            const __m256i p1 = _mm256_mul_epu32(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                    da + 4 * (i + 1))),
                vdb);
            lo0 = _mm256_add_epi64(lo0, _mm256_and_si256(p0, m32));
            hi0 = _mm256_add_epi64(hi0, _mm256_srli_epi64(p0, 32));
            lo1 = _mm256_add_epi64(lo1, _mm256_and_si256(p1, m32));
            hi1 = _mm256_add_epi64(hi1, _mm256_srli_epi64(p1, 32));
        }
        if (jmax1 > jmax0 && jmin1 <= jmax1) {
            // j = jmax1 reaches only column c + 1.
            const __m256i p = _mm256_mul_epu32(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                    da + 4 * (c + 1 - jmax1))),
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                    db + 4 * jmax1)));
            lo1 = _mm256_add_epi64(lo1, _mm256_and_si256(p, m32));
            hi1 = _mm256_add_epi64(hi1, _mm256_srli_epi64(p, 32));
        }
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(acc_lo + 4 * c), lo0);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(acc_hi + 4 * c), hi0);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(acc_lo + 4 * (c + 1)), lo1);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(acc_hi + 4 * (c + 1)), hi1);
    }
    for (; c < ncols; ++c) {
        const std::size_t jmin = c + 1 > nda ? c + 1 - nda : 0;
        const std::size_t jmax = std::min(ndb - 1, c);
        __m256i vlo = _mm256_setzero_si256();
        __m256i vhi = _mm256_setzero_si256();
        for (std::size_t j = jmin; j <= jmax; ++j) {
            const __m256i vda = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(da + 4 * (c - j)));
            const __m256i vdb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(db + 4 * j));
            const __m256i p = _mm256_mul_epu32(vda, vdb);
            vlo = _mm256_add_epi64(vlo, _mm256_and_si256(p, m32));
            vhi = _mm256_add_epi64(vhi, _mm256_srli_epi64(p, 32));
        }
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(acc_lo + 4 * c), vlo);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(acc_hi + 4 * c), vhi);
    }
}

const KernelTable*
avx2_table()
{
    static const KernelTable table = [] {
        KernelTable t;
        t.tier = Tier::Avx2;
        t.name = "avx2";
        // Vectorize where it wins (measured on Skylake-class cores):
        // add_n/sub_n ~2.5x and the SoA vertical kernel 1.2-1.5x are
        // clear wins; the two-pass split-radix mul_1/addmul_1/submul_1
        // lose to the scalar mulx chain (0.4-0.6x) so those slots stay
        // scalar, and the column basecase only takes over above its
        // internal ~48-limb crossover (scalar below).
        t.mul_1 = scalar_mul_1;
        t.addmul_1 = scalar_addmul_1;
        t.submul_1 = scalar_submul_1;
        t.add_n = avx2_add_n;
        t.sub_n = avx2_sub_n;
        t.mul_basecase = avx2_mul_basecase;
        t.soa_width = 4;
        t.soa_vertical = avx2_soa_vertical;
        return t;
    }();
    return &table;
}

} // namespace camp::mpn::kernels

#else // !(CAMP_KERNELS_X86 && __AVX2__)

namespace camp::mpn::kernels {

const KernelTable*
avx2_table()
{
    return nullptr;
}

} // namespace camp::mpn::kernels

#endif
