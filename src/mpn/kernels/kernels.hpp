/**
 * @file
 * Runtime-dispatched SIMD limb kernels (ROADMAP item 2): the inner
 * primitives of the mpn layer — mul_1 / addmul_1 / submul_1 / add_n /
 * sub_n and the schoolbook basecase — behind a cpuid-probed dispatch
 * table with the scalar code as mandatory fallback.
 *
 * Tiers
 *  - scalar: the portable reference loops (always present, always the
 *    correctness oracle for the differential tests);
 *  - sse4:   128-bit SSE4.2 kernels (2 lanes of 64);
 *  - avx2:   256-bit AVX2 kernels (4 lanes of 64).
 *
 * Selection: the first call to active() probes the host CPU and picks
 * the widest supported tier; `CAMP_SIMD={auto,avx2,sse4,scalar}`
 * overrides (an unsupported explicit request logs a notice to stderr
 * and falls back to scalar, so a pinned CI leg never silently runs a
 * different tier than it printed).
 *
 * Representation: the SIMD multiply kernels internally use a
 * reduced-radix carry-save form — the operands are expanded into
 * radix-2^32 digit columns and partial products are accumulated in
 * *pairs* of 64-bit per-column accumulators (low and high halves of
 * each 32x32 product), so no carry propagates during accumulation;
 * one O(n) resolution pass at the kernel boundary converts back to
 * 64-bit limbs. The Limb API is unchanged and every tier returns
 * bit-identical results (a hard invariant, fuzzed by
 * tests/test_simd_kernels.cpp).
 */
#ifndef CAMP_MPN_KERNELS_KERNELS_HPP
#define CAMP_MPN_KERNELS_KERNELS_HPP

#include <cstddef>

#include "mpn/limb.hpp"

namespace camp::mpn::kernels {

/** SIMD capability tiers, ordered by preference. */
enum class Tier : int
{
    Scalar = 0,
    Sse4 = 1,
    Avx2 = 2,
};

/** "scalar", "sse4", "avx2". */
const char* tier_name(Tier tier);

/**
 * One tier's kernel set. Function contracts match the mpn entry
 * points exactly (including documented in-place/aliasing support);
 * a tier whose vectorized variant of some primitive does not pay for
 * itself on real hosts may point that slot at the scalar kernel —
 * the table is "vectorize where it wins", not "vectorize everything".
 */
struct KernelTable
{
    Tier tier = Tier::Scalar;
    const char* name = "scalar";

    Limb (*mul_1)(Limb*, const Limb*, std::size_t, Limb) = nullptr;
    Limb (*addmul_1)(Limb*, const Limb*, std::size_t, Limb) = nullptr;
    Limb (*submul_1)(Limb*, const Limb*, std::size_t, Limb) = nullptr;
    Limb (*add_n)(Limb*, const Limb*, const Limb*,
                  std::size_t) = nullptr;
    Limb (*sub_n)(Limb*, const Limb*, const Limb*,
                  std::size_t) = nullptr;
    void (*mul_basecase)(Limb*, const Limb*, std::size_t, const Limb*,
                         std::size_t) = nullptr;

    /**
     * Vertical struct-of-arrays basecase across @p soa_width
     * independent products (0 = tier has no SoA kernel). Digit-major
     * layout: dig[k * soa_width + lane] holds lane `lane`'s radix-2^32
     * digit k in the low half of a 64-bit word. accLo/accHi are the
     * carry-save column accumulators, (nda + ndb) columns each,
     * zero-initialized by the caller; column k of the exact product
     * is accLo[k] + accHi[k - 1] plus the ripple carry (resolved by
     * kernels::soa_mul_batch).
     */
    std::size_t soa_width = 0;
    void (*soa_vertical)(std::uint64_t* acc_lo, std::uint64_t* acc_hi,
                         const std::uint64_t* da, std::size_t nda,
                         const std::uint64_t* db,
                         std::size_t ndb) = nullptr;
};

/** The scalar reference table (always available). */
const KernelTable& scalar_table();

/** Tier tables; nullptr when the build lacks the ISA (non-x86). */
const KernelTable* sse4_table();
const KernelTable* avx2_table();

/** True when the running host can execute @p tier. */
bool host_supports(Tier tier);

/** @p tier's table when built in and host-supported, else nullptr
 * (Scalar always resolves). */
const KernelTable* table_for(Tier tier);

/** The dispatched table: probed once (cpuid + CAMP_SIMD override) on
 * first use; hot-path cost afterwards is one relaxed atomic load. */
const KernelTable& active();

/** Tier of active(). */
Tier active_tier();

/**
 * Force the active table (testing/bench only: lets one process
 * compare tiers differentially without re-execing under different
 * CAMP_SIMD). Requires host support (returns false and leaves the
 * table unchanged otherwise). Not thread-safe against concurrent
 * kernel calls — switch tiers only from single-threaded phases.
 */
bool set_active_tier(Tier tier);

} // namespace camp::mpn::kernels

#endif // CAMP_MPN_KERNELS_KERNELS_HPP
