/**
 * @file
 * Cross-TU declarations for the kernel tiers: the scalar reference
 * kernels (used directly by the scalar table and as tails / fallback
 * slots by the SIMD tiers) and the per-ISA kernel sets. Nothing here
 * is public API — include mpn/kernels/kernels.hpp instead.
 */
#ifndef CAMP_MPN_KERNELS_INTERNAL_HPP
#define CAMP_MPN_KERNELS_INTERNAL_HPP

#include "mpn/kernels/kernels.hpp"

// The SIMD translation units are compiled with per-file target flags
// (-msse4.2 / -mavx2) on x86-64 only; everywhere else they compile to
// empty tables and dispatch stays scalar.
#if defined(__x86_64__) || defined(_M_X64)
#define CAMP_KERNELS_X86 1
#else
#define CAMP_KERNELS_X86 0
#endif

namespace camp::mpn::kernels {

Limb scalar_mul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);
Limb scalar_addmul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);
Limb scalar_submul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);
Limb scalar_add_n(Limb* rp, const Limb* ap, const Limb* bp,
                  std::size_t n);
Limb scalar_sub_n(Limb* rp, const Limb* ap, const Limb* bp,
                  std::size_t n);
void scalar_mul_basecase(Limb* rp, const Limb* ap, std::size_t an,
                         const Limb* bp, std::size_t bn);

#if CAMP_KERNELS_X86
Limb sse4_add_n(Limb* rp, const Limb* ap, const Limb* bp,
                std::size_t n);
Limb sse4_sub_n(Limb* rp, const Limb* ap, const Limb* bp,
                std::size_t n);
Limb sse4_mul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);
Limb sse4_addmul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);
Limb sse4_submul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);
void sse4_mul_basecase(Limb* rp, const Limb* ap, std::size_t an,
                       const Limb* bp, std::size_t bn);
void sse4_soa_vertical(std::uint64_t* acc_lo, std::uint64_t* acc_hi,
                       const std::uint64_t* da, std::size_t nda,
                       const std::uint64_t* db, std::size_t ndb);

Limb avx2_add_n(Limb* rp, const Limb* ap, const Limb* bp,
                std::size_t n);
Limb avx2_sub_n(Limb* rp, const Limb* ap, const Limb* bp,
                std::size_t n);
Limb avx2_mul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);
Limb avx2_addmul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);
Limb avx2_submul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);
void avx2_mul_basecase(Limb* rp, const Limb* ap, std::size_t an,
                       const Limb* bp, std::size_t bn);
void avx2_soa_vertical(std::uint64_t* acc_lo, std::uint64_t* acc_hi,
                       const std::uint64_t* da, std::size_t nda,
                       const std::uint64_t* db, std::size_t ndb);
#endif

} // namespace camp::mpn::kernels

#endif // CAMP_MPN_KERNELS_INTERNAL_HPP
