/**
 * @file
 * Scalar reference kernels — the exact loops the mpn layer shipped
 * with before the dispatch table existed, moved here verbatim so they
 * remain the mandatory fallback tier and the oracle every SIMD tier
 * is differentially fuzzed against.
 */
#include "mpn/kernels/internal.hpp"

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace camp::mpn::kernels {

Limb
scalar_mul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    Limb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const u128 p = static_cast<u128>(ap[i]) * b + carry;
        rp[i] = static_cast<Limb>(p);
        carry = static_cast<Limb>(p >> 64);
    }
    return carry;
}

Limb
scalar_addmul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    Limb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const u128 p = static_cast<u128>(ap[i]) * b + rp[i] + carry;
        rp[i] = static_cast<Limb>(p);
        carry = static_cast<Limb>(p >> 64);
    }
    return carry;
}

Limb
scalar_submul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    Limb borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const u128 p = static_cast<u128>(ap[i]) * b + borrow;
        const Limb lo = static_cast<Limb>(p);
        borrow = static_cast<Limb>(p >> 64) + (rp[i] < lo);
        rp[i] -= lo;
    }
    return borrow;
}

Limb
scalar_add_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n)
{
    Limb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Limb a = ap[i];
        const Limb s = a + bp[i];
        const Limb c1 = s < a;
        const Limb r = s + carry;
        carry = c1 | (r < s);
        rp[i] = r;
    }
    return carry;
}

Limb
scalar_sub_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n)
{
    Limb borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Limb a = ap[i];
        const Limb b = bp[i];
        const Limb d = a - b;
        const Limb b1 = a < b;
        const Limb r = d - borrow;
        borrow = b1 | (d < borrow);
        rp[i] = r;
    }
    return borrow;
}

void
scalar_mul_basecase(Limb* rp, const Limb* ap, std::size_t an,
                    const Limb* bp, std::size_t bn)
{
    CAMP_ASSERT(an >= bn && bn >= 1);
    rp[an] = scalar_mul_1(rp, ap, an, bp[0]);
    for (std::size_t j = 1; j < bn; ++j)
        rp[an + j] = scalar_addmul_1(rp + j, ap, an, bp[j]);
}

const KernelTable&
scalar_table()
{
    static const KernelTable table = [] {
        KernelTable t;
        t.tier = Tier::Scalar;
        t.name = "scalar";
        t.mul_1 = scalar_mul_1;
        t.addmul_1 = scalar_addmul_1;
        t.submul_1 = scalar_submul_1;
        t.add_n = scalar_add_n;
        t.sub_n = scalar_sub_n;
        t.mul_basecase = scalar_mul_basecase;
        t.soa_width = 0;
        t.soa_vertical = nullptr;
        return t;
    }();
    return table;
}

} // namespace camp::mpn::kernels
