/**
 * @file
 * SSE4.2 tier: 2x64-bit lanes. Same algorithm family as the AVX2 tier
 * (see avx2.cpp for the full commentary): movemask carry-select
 * add_n/sub_n, two-pass split-radix mul_1/addmul_1/submul_1, and the
 * reduced-radix carry-save column basecase + vertical SoA kernel.
 * The narrower vectors halve the win but the structure is identical,
 * which keeps the differential tests honest across all three tiers.
 */
#include "mpn/kernels/internal.hpp"

#if CAMP_KERNELS_X86 && defined(__SSE4_2__)

#include <nmmintrin.h>

#include <algorithm>

#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/thread_pool.hpp"

namespace camp::mpn::kernels {

namespace {

constexpr std::size_t kVecMinLimbs = 8;
constexpr std::size_t kBasecaseMinLimbs = 4;

/** kCarry2[m][lane] = bit `lane` of m, as an addable 64-bit value. */
alignas(16) constexpr std::uint64_t kCarry2[4][2] = {
    {0, 0},
    {1, 0},
    {0, 1},
    {1, 1},
};

inline __m128i
loadu(const Limb* p)
{
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline void
storeu(Limb* p, __m128i v)
{
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

/** Lanewise unsigned x < y (all-ones mask where true). */
inline __m128i
lt_u64(__m128i x, __m128i y)
{
    const __m128i bias =
        _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
    return _mm_cmpgt_epi64(_mm_xor_si128(y, bias),
                           _mm_xor_si128(x, bias));
}

/** Sign bits of the 2 lanes as a 2-bit mask. */
inline unsigned
lane_mask(__m128i v)
{
    return static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(v)));
}

/** Pass 1 of the split-radix multiply, 2 lanes per iteration. */
inline void
mul_lohi(const Limb* ap, std::size_t n2, Limb b, Limb* lo, Limb* hi)
{
    const __m128i m32 = _mm_set1_epi64x(0xffffffffLL);
    const __m128i vb0 =
        _mm_set1_epi64x(static_cast<long long>(b & 0xffffffffULL));
    const __m128i vb1 =
        _mm_set1_epi64x(static_cast<long long>(b >> 32));
    for (std::size_t i = 0; i < n2; i += 2) {
        const __m128i va = loadu(ap + i);
        const __m128i alo = _mm_and_si128(va, m32);
        const __m128i ahi = _mm_srli_epi64(va, 32);
        const __m128i ll = _mm_mul_epu32(alo, vb0);
        const __m128i lh = _mm_mul_epu32(alo, vb1);
        const __m128i hl = _mm_mul_epu32(ahi, vb0);
        const __m128i hh = _mm_mul_epu32(ahi, vb1);
        const __m128i mid = _mm_add_epi64(lh, hl);
        const __m128i midc =
            _mm_slli_epi64(_mm_srli_epi64(lt_u64(mid, lh), 63), 32);
        const __m128i vlo =
            _mm_add_epi64(ll, _mm_slli_epi64(mid, 32));
        const __m128i c2 = lt_u64(vlo, ll); // all-ones == -1
        __m128i vhi = _mm_add_epi64(hh, _mm_srli_epi64(mid, 32));
        vhi = _mm_add_epi64(vhi, midc);
        vhi = _mm_sub_epi64(vhi, c2);
        storeu(lo + i, vlo);
        storeu(hi + i, vhi);
    }
}

} // namespace

Limb
sse4_add_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n)
{
    std::size_t i = 0;
    Limb carry = 0;
    if (n >= kVecMinLimbs) {
        const __m128i ones = _mm_set1_epi64x(-1LL);
        unsigned cin = 0;
        for (; i + 2 <= n; i += 2) {
            const __m128i va = loadu(ap + i);
            const __m128i vs = _mm_add_epi64(va, loadu(bp + i));
            const unsigned g = lane_mask(lt_u64(vs, va));
            const unsigned p = lane_mask(_mm_cmpeq_epi64(vs, ones));
            const unsigned c = (p + ((g << 1) | cin)) ^ p;
            cin = (c >> 2) & 1;
            const __m128i vc = _mm_load_si128(
                reinterpret_cast<const __m128i*>(kCarry2[c & 3]));
            storeu(rp + i, _mm_add_epi64(vs, vc));
        }
        carry = cin;
    }
    for (; i < n; ++i) {
        const Limb a = ap[i];
        const Limb s = a + bp[i];
        const Limb c1 = s < a;
        const Limb r = s + carry;
        carry = c1 | (r < s);
        rp[i] = r;
    }
    return carry;
}

Limb
sse4_sub_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n)
{
    std::size_t i = 0;
    Limb borrow = 0;
    if (n >= kVecMinLimbs) {
        const __m128i zero = _mm_setzero_si128();
        unsigned bin = 0;
        for (; i + 2 <= n; i += 2) {
            const __m128i va = loadu(ap + i);
            const __m128i vb = loadu(bp + i);
            const __m128i vd = _mm_sub_epi64(va, vb);
            const unsigned g = lane_mask(lt_u64(va, vb));
            const unsigned p = lane_mask(_mm_cmpeq_epi64(vd, zero));
            const unsigned c = (p + ((g << 1) | bin)) ^ p;
            bin = (c >> 2) & 1;
            const __m128i vc = _mm_load_si128(
                reinterpret_cast<const __m128i*>(kCarry2[c & 3]));
            storeu(rp + i, _mm_sub_epi64(vd, vc));
        }
        borrow = bin;
    }
    for (; i < n; ++i) {
        const Limb a = ap[i];
        const Limb b = bp[i];
        const Limb d = a - b;
        const Limb b1 = a < b;
        const Limb r = d - borrow;
        borrow = b1 | (d < borrow);
        rp[i] = r;
    }
    return borrow;
}

Limb
sse4_mul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    if (n < kVecMinLimbs)
        return scalar_mul_1(rp, ap, n, b);
    const std::size_t n2 = n & ~std::size_t{1};
    support::ScratchFrame frame;
    Limb* lo = frame.alloc(2 * n2);
    Limb* hi = lo + n2;
    mul_lohi(ap, n2, b, lo, hi);
    Limb carry = 0;
    Limb hprev = 0;
    for (std::size_t i = 0; i < n2; ++i) {
        const u128 t = static_cast<u128>(lo[i]) + hprev + carry;
        rp[i] = static_cast<Limb>(t);
        carry = static_cast<Limb>(t >> 64);
        hprev = hi[i];
    }
    carry += hprev;
    for (std::size_t i = n2; i < n; ++i) {
        const u128 p = static_cast<u128>(ap[i]) * b + carry;
        rp[i] = static_cast<Limb>(p);
        carry = static_cast<Limb>(p >> 64);
    }
    return carry;
}

Limb
sse4_addmul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    if (n < kVecMinLimbs)
        return scalar_addmul_1(rp, ap, n, b);
    const std::size_t n2 = n & ~std::size_t{1};
    support::ScratchFrame frame;
    Limb* lo = frame.alloc(2 * n2);
    Limb* hi = lo + n2;
    mul_lohi(ap, n2, b, lo, hi);
    Limb carry = 0;
    Limb hprev = 0;
    for (std::size_t i = 0; i < n2; ++i) {
        const u128 t =
            static_cast<u128>(rp[i]) + lo[i] + hprev + carry;
        rp[i] = static_cast<Limb>(t);
        carry = static_cast<Limb>(t >> 64);
        hprev = hi[i];
    }
    carry += hprev;
    for (std::size_t i = n2; i < n; ++i) {
        const u128 p = static_cast<u128>(ap[i]) * b + rp[i] + carry;
        rp[i] = static_cast<Limb>(p);
        carry = static_cast<Limb>(p >> 64);
    }
    return carry;
}

Limb
sse4_submul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b)
{
    if (n < kVecMinLimbs)
        return scalar_submul_1(rp, ap, n, b);
    const std::size_t n2 = n & ~std::size_t{1};
    support::ScratchFrame frame;
    Limb* lo = frame.alloc(2 * n2);
    Limb* hi = lo + n2;
    mul_lohi(ap, n2, b, lo, hi);
    Limb c = 0;
    Limb hprev = 0;
    Limb borrow = 0;
    for (std::size_t i = 0; i < n2; ++i) {
        const u128 t = static_cast<u128>(lo[i]) + hprev + c;
        const Limb m = static_cast<Limb>(t);
        c = static_cast<Limb>(t >> 64);
        hprev = hi[i];
        const Limb r = rp[i];
        const Limb d = r - m;
        const Limb b1 = r < m;
        rp[i] = d - borrow;
        borrow = b1 | (d < borrow);
    }
    borrow += hprev + c;
    for (std::size_t i = n2; i < n; ++i) {
        const u128 p = static_cast<u128>(ap[i]) * b + borrow;
        const Limb lo_limb = static_cast<Limb>(p);
        borrow = static_cast<Limb>(p >> 64) + (rp[i] < lo_limb);
        rp[i] -= lo_limb;
    }
    return borrow;
}

void
sse4_mul_basecase(Limb* rp, const Limb* ap, std::size_t an,
                  const Limb* bp, std::size_t bn)
{
    CAMP_ASSERT(an >= bn && bn >= 1);
    if (bn < kBasecaseMinLimbs) {
        scalar_mul_basecase(rp, ap, an, bp, bn);
        return;
    }
    support::ScratchFrame frame;
    const std::size_t nda = 2 * an;
    const std::size_t ndb = 2 * bn;
    const std::size_t ncols = nda + ndb;

    // Radix-2^32 digits of a, zero-padded 2 digits on both ends so
    // the diagonal loads never read out of range.
    std::uint64_t* da_store = frame.alloc(nda + 4);
    std::uint64_t* da = da_store + 2;
    for (int t = 0; t < 2; ++t) {
        da[-1 - t] = 0;
        da[nda + t] = 0;
    }
    for (std::size_t m = 0; m < an; ++m) {
        da[2 * m] = ap[m] & 0xffffffffULL;
        da[2 * m + 1] = ap[m] >> 32;
    }
    std::uint64_t* db = frame.alloc(ndb);
    for (std::size_t m = 0; m < bn; ++m) {
        db[2 * m] = bp[m] & 0xffffffffULL;
        db[2 * m + 1] = bp[m] >> 32;
    }

    const __m128i m32 = _mm_set1_epi64x(0xffffffffLL);
    std::uint64_t carry = 0;
    std::uint64_t hi_prev = 0;
    alignas(16) std::uint64_t col_lo[2];
    alignas(16) std::uint64_t col_hi[2];
    for (std::size_t k = 0; k < ncols; k += 2) {
        const std::size_t jmin = k + 1 > nda ? k + 1 - nda : 0;
        const std::size_t jmax = std::min(ndb - 1, k + 1);
        __m128i vlo = _mm_setzero_si128();
        __m128i vhi = _mm_setzero_si128();
        for (std::size_t j = jmin; j <= jmax; ++j) {
            const __m128i vb =
                _mm_set1_epi64x(static_cast<long long>(db[j]));
            const __m128i vda = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(
                    da + static_cast<std::ptrdiff_t>(k) -
                    static_cast<std::ptrdiff_t>(j)));
            const __m128i p = _mm_mul_epu32(vda, vb);
            vlo = _mm_add_epi64(vlo, _mm_and_si128(p, m32));
            vhi = _mm_add_epi64(vhi, _mm_srli_epi64(p, 32));
        }
        _mm_store_si128(reinterpret_cast<__m128i*>(col_lo), vlo);
        _mm_store_si128(reinterpret_cast<__m128i*>(col_hi), vhi);
        for (int t = 0; t < 2; ++t) {
            const std::size_t c = k + t;
            const std::uint64_t v = col_lo[t] + hi_prev + carry;
            hi_prev = col_hi[t];
            carry = v >> 32;
            const std::uint64_t dig = v & 0xffffffffULL;
            if ((c & 1) == 0)
                rp[c / 2] = dig;
            else
                rp[c / 2] |= dig << 32;
        }
    }
    CAMP_ASSERT(carry == 0 && hi_prev == 0);
}

void
sse4_soa_vertical(std::uint64_t* acc_lo, std::uint64_t* acc_hi,
                  const std::uint64_t* da, std::size_t nda,
                  const std::uint64_t* db, std::size_t ndb)
{
    const __m128i m32 = _mm_set1_epi64x(0xffffffffLL);
    const std::size_t ncols = nda + ndb;
    for (std::size_t c = 0; c < ncols; ++c) {
        const std::size_t jmin = c + 1 > nda ? c + 1 - nda : 0;
        const std::size_t jmax = std::min(ndb - 1, c);
        __m128i vlo = _mm_setzero_si128();
        __m128i vhi = _mm_setzero_si128();
        for (std::size_t j = jmin; j <= jmax; ++j) {
            const __m128i vda = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(da + 2 * (c - j)));
            const __m128i vdb = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(db + 2 * j));
            const __m128i p = _mm_mul_epu32(vda, vdb);
            vlo = _mm_add_epi64(vlo, _mm_and_si128(p, m32));
            vhi = _mm_add_epi64(vhi, _mm_srli_epi64(p, 32));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i*>(acc_lo + 2 * c),
                        vlo);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(acc_hi + 2 * c),
                        vhi);
    }
}

const KernelTable*
sse4_table()
{
    static const KernelTable table = [] {
        KernelTable t;
        t.tier = Tier::Sse4;
        t.name = "sse4";
        // Vectorize where it wins: at 2 lanes only add_n/sub_n
        // (~1.3x) pay for themselves; every multiply variant loses to
        // the scalar mulx chain (~0.5x measured), so those slots and
        // the SoA kernel stay scalar/per-product. The vectorized
        // bodies remain compiled and differentially fuzzed so a wider
        // retuning can re-enable them from data, not guesswork.
        t.mul_1 = scalar_mul_1;
        t.addmul_1 = scalar_addmul_1;
        t.submul_1 = scalar_submul_1;
        t.add_n = sse4_add_n;
        t.sub_n = sse4_sub_n;
        t.mul_basecase = scalar_mul_basecase;
        t.soa_width = 0;
        t.soa_vertical = nullptr;
        return t;
    }();
    return &table;
}

} // namespace camp::mpn::kernels

#else // !(CAMP_KERNELS_X86 && __SSE4_2__)

namespace camp::mpn::kernels {

const KernelTable*
sse4_table()
{
    return nullptr;
}

} // namespace camp::mpn::kernels

#endif
