#include "mpn/sqrt.hpp"

#include <cmath>
#include <vector>

#include "mpn/basic.hpp"
#include "mpn/div.hpp"
#include "mpn/mul.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace camp::mpn {

namespace {

/** floor(sqrt(x)) for a 64-bit value. */
Limb
isqrt64(Limb x)
{
    Limb s = static_cast<Limb>(std::sqrt(static_cast<double>(x)));
    while (s > 0 && static_cast<u128>(s) * s > x)
        --s;
    while (static_cast<u128>(s + 1) * (s + 1) <= x)
        ++s;
    return s;
}

/** floor(sqrt(x)) for a 128-bit value. */
Limb
isqrt128(u128 x)
{
    if (x == 0)
        return 0;
    const std::uint64_t hi = static_cast<std::uint64_t>(x >> 64);
    u128 s = hi ? (static_cast<u128>(isqrt64(hi)) << 32)
                : static_cast<u128>(isqrt64(static_cast<Limb>(x)));
    if (s == 0)
        s = 1;
    for (int i = 0; i < 6; ++i)
        s = (s + x / s) >> 1;
    while (s * s > x)
        --s;
    while (s + 1 <= kLimbMax && (s + 1) * (s + 1) <= x)
        ++s;
    CAMP_ASSERT(s <= kLimbMax);
    return static_cast<Limb>(s);
}

/**
 * Restoring binary square root for small operands: O(bits) iterations
 * of O(n) work. Used as the recursion base where the 128-bit fast path
 * does not reach. Same contract as sqrtrem_rec.
 */
std::size_t
sqrtrem_bitwise(Limb* sp, Limb* rp, const Limb* ap, std::size_t n)
{
    const std::size_t h = (n + 1) / 2;
    std::vector<Limb> r(n + 1, 0), s(h + 1, 0), t(h + 1, 0);
    for (std::size_t i = 32 * n; i-- > 0;) {
        // r = (r << 2) | next bit pair of a.
        Limb carry = 0;
        for (std::size_t j = 0; j < n + 1; ++j) {
            const Limb v = r[j];
            r[j] = (v << 2) | carry;
            carry = v >> 62;
        }
        r[0] |= (ap[(2 * i) / 64] >> ((2 * i) % 64)) & 3;
        // t = (s << 2) | 1; s <<= 1.
        carry = 0;
        for (std::size_t j = 0; j < h + 1; ++j) {
            const Limb v = s[j];
            t[j] = (v << 2) | carry;
            carry = v >> 62;
        }
        t[0] |= 1;
        carry = 0;
        for (std::size_t j = 0; j < h + 1; ++j) {
            const Limb v = s[j];
            s[j] = (v << 1) | carry;
            carry = v >> 63;
        }
        const std::size_t rn_now = normalized_size(r.data(), n + 1);
        const std::size_t tn_now = normalized_size(t.data(), h + 1);
        if (cmp(r.data(), rn_now, t.data(), tn_now) >= 0) {
            const Limb borrow =
                sub(r.data(), r.data(), rn_now, t.data(), tn_now);
            CAMP_ASSERT(borrow == 0);
            s[0] |= 1;
        }
    }
    copy(sp, s.data(), h);
    CAMP_ASSERT(s[h] == 0);
    const std::size_t rn = normalized_size(r.data(), n + 1);
    CAMP_ASSERT(rn <= h + 1);
    copy(rp, r.data(), rn);
    return rn;
}

/**
 * Zimmermann recursion. ap (n limbs) must be "quarter normalized":
 * ap[n-1] >= B/4. Writes s (h = ceil(n/2) limbs) and the remainder
 * (r <= 2s, at most h + 1 limbs into rp); returns the remainder size.
 */
std::size_t
sqrtrem_rec(Limb* sp, Limb* rp, const Limb* ap, std::size_t n)
{
    CAMP_ASSERT(n >= 1 && ap[n - 1] >= (static_cast<Limb>(1) << 62));
    const std::size_t h = (n + 1) / 2;
    if (n <= 2) {
        const u128 a = n == 2
                           ? ((static_cast<u128>(ap[1]) << 64) | ap[0])
                           : static_cast<u128>(ap[0]);
        const Limb s = isqrt128(a);
        sp[0] = s;
        const u128 r = a - static_cast<u128>(s) * s;
        rp[0] = static_cast<Limb>(r);
        rp[1] = static_cast<Limb>(r >> 64);
        return normalized_size(rp, 2);
    }
    if (n == 3)
        return sqrtrem_bitwise(sp, rp, ap, n);

    // Split so the high part keeps at least half the limbs (nh >= 2l),
    // which Zimmermann's one-correction bound requires.
    const std::size_t l = n / 4;           // low split (a1, a0: l limbs)
    const std::size_t nh = n - 2 * l;      // high part limbs
    const std::size_t sh = h - l;          // s1 limbs = ceil(nh / 2)
    CAMP_ASSERT(l >= 1 && nh >= 2 * l && sh == (nh + 1) / 2);

    // (s1, r1) = sqrtrem(high part).
    std::vector<Limb> s1(sh), r1(sh + 2, 0);
    const std::size_t r1n =
        sqrtrem_rec(s1.data(), r1.data(), ap + 2 * l, nh);

    // (q, u) = divrem(r1 * B^l + a1, 2 * s1).
    std::vector<Limb> num(l + r1n + 1, 0);
    copy(num.data(), ap + l, l);
    copy(num.data() + l, r1.data(), r1n);
    std::vector<Limb> d(sh + 1);
    const Limb dcarry = add_n(d.data(), s1.data(), s1.data(), sh);
    d[sh] = dcarry;
    const std::size_t dn = normalized_size(d.data(), sh + 1);
    std::size_t numn = normalized_size(num.data(), num.size());
    std::vector<Limb> q(l + 2, 0), u(dn + 1, 0);
    if (numn >= dn) {
        divrem(q.data(), u.data(), num.data(), numn, d.data(), dn);
    } else {
        copy(u.data(), num.data(), numn);
    }
    std::size_t qn = normalized_size(q.data(), q.size());
    CAMP_ASSERT(qn <= l + 1);
    if (qn == l + 1) {
        // q == B^l (only possible when r1 == 2*s1 and a1 is large). The
        // true root's low part is then B^l - 1 — the estimate overshoots
        // by exactly one — so clamp q and give the division remainder
        // its unit of the divisor back (r1*B^l + a1 == q*d + u stays an
        // identity). Propagating a carry into s1 instead would overflow
        // its sh limbs when s1 is all ones (e.g. a == B^n - 1).
        CAMP_ASSERT(q[l] == 1);
        q[l] = 0;
        for (std::size_t j = 0; j < l; ++j)
            q[j] = kLimbMax;
        qn = l;
        u[dn] = add(u.data(), u.data(), dn, d.data(), dn);
    }
    const std::size_t un = normalized_size(u.data(), u.size());

    // s = s1 * B^l + q.
    copy(sp + l, s1.data(), sh);
    copy(sp, q.data(), std::min(qn, l));
    if (qn < l)
        zero(sp + qn, l - qn);

    // r = u * B^l + a0 - q^2, with one downward correction if negative.
    std::vector<Limb> rr(h + 3, 0);
    copy(rr.data(), ap, l);
    copy(rr.data() + l, u.data(), un);
    std::size_t rrn = normalized_size(rr.data(), l + un);
    std::vector<Limb> qsq(2 * (l + 1) + 1, 0);
    std::size_t qsqn = 0;
    if (qn != 0) {
        sqr(qsq.data(), q.data(), qn);
        qsqn = normalized_size(qsq.data(), 2 * qn);
    }
    if (cmp(rr.data(), rrn, qsq.data(), qsqn) >= 0) {
        const Limb borrow = sub(rr.data(), rr.data(), rrn, qsq.data(),
                                qsqn);
        CAMP_ASSERT(borrow == 0);
    } else {
        // s -= 1; r = (2s + 1) - (q^2 - rr).
        std::vector<Limb> deficit(qsqn, 0);
        Limb borrow = sub(deficit.data(), qsq.data(), qsqn, rr.data(),
                          rrn);
        CAMP_ASSERT(borrow == 0);
        const std::size_t defn = normalized_size(deficit.data(), qsqn);
        borrow = sub_1(sp, sp, h, 1);
        CAMP_ASSERT(borrow == 0);
        std::vector<Limb> twos(h + 1, 0);
        twos[h] = add_n(twos.data(), sp, sp, h);
        Limb c = add_1(twos.data(), twos.data(), h + 1, 1);
        CAMP_ASSERT(c == 0);
        const std::size_t twon = normalized_size(twos.data(), h + 1);
        CAMP_ASSERT(cmp(twos.data(), twon, deficit.data(), defn) >= 0);
        borrow = sub(twos.data(), twos.data(), twon, deficit.data(),
                     defn);
        CAMP_ASSERT(borrow == 0);
        zero(rr.data(), rr.size());
        copy(rr.data(), twos.data(), twon);
        rrn = twon;
    }
    rrn = normalized_size(rr.data(), rrn);
    CAMP_ASSERT(rrn <= h + 1);
    copy(rp, rr.data(), rrn);
    return rrn;
}

} // namespace

std::size_t
sqrtrem(Limb* sp, Limb* rp, const Limb* ap, std::size_t an)
{
    const std::size_t n = normalized_size(ap, an);
    const std::size_t h = (an + 1) / 2;
    if (n == 0) {
        zero(sp, h);
        if (rp)
            zero(rp, an);
        return 0;
    }

    // Quarter-normalize with an even bit shift so the shifted square
    // root is an exact right shift of the true one.
    const unsigned e =
        static_cast<unsigned>(64 - camp::bit_length(ap[n - 1])) & ~1u;
    std::vector<Limb> a2(n);
    if (e == 0) {
        copy(a2.data(), ap, n);
    } else {
        const Limb out = lshift(a2.data(), ap, n, e);
        CAMP_ASSERT(out == 0);
    }
    const std::size_t hn = (n + 1) / 2;
    std::vector<Limb> s2(hn), r2(hn + 2, 0);
    sqrtrem_rec(s2.data(), r2.data(), a2.data(), n);
    if (e != 0)
        rshift(s2.data(), s2.data(), hn, e / 2);

    zero(sp, h);
    copy(sp, s2.data(), hn);

    // Recompute r = a - s^2 (also revalidates the shift correction).
    std::vector<Limb> sq(2 * hn + 1, 0);
    sqr(sq.data(), s2.data(), hn);
    const std::size_t sqn = normalized_size(sq.data(), 2 * hn);
    std::vector<Limb> rem(n, 0);
    CAMP_ASSERT(cmp(ap, n, sq.data(), sqn) >= 0);
    copy(rem.data(), ap, n);
    const Limb borrow = sub(rem.data(), rem.data(), n, sq.data(), sqn);
    CAMP_ASSERT(borrow == 0);
    const std::size_t rn = normalized_size(rem.data(), n);
    if (rp) {
        zero(rp, an);
        copy(rp, rem.data(), rn);
    }
    return rn;
}

} // namespace camp::mpn
