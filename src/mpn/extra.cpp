#include "mpn/extra.hpp"

#include <vector>

#include "mpn/basic.hpp"
#include "mpn/mul.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace camp::mpn {

namespace {

/** Truncated schoolbook: rp[0..n) = low n limbs of a * b. */
void
mullo_basecase(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n)
{
    zero(rp, n);
    for (std::size_t j = 0; j < n; ++j) {
        if (bp[j] == 0)
            continue;
        addmul_1(rp + j, ap, n - j, bp[j]);
    }
}

} // namespace

void
mullo_n(Limb* rp, const Limb* ap, const Limb* bp, std::size_t n)
{
    CAMP_ASSERT(n >= 1);
    if (n <= 2 * mul_tuning().karatsuba) {
        mullo_basecase(rp, ap, bp, n);
        return;
    }
    // a = a1 B^h + a0, b = b1 B^h + b0 with h = ceil(n/2):
    // low_n(a b) = a0*b0 + B^h * (low_{n-h}(a0 b1) + low_{n-h}(a1 b0)).
    const std::size_t h = (n + 1) / 2;
    const std::size_t rest = n - h;
    std::vector<Limb> full(2 * h), low(rest);
    mul(full.data(), ap, h, bp, h); // a0 * b0, 2h >= n limbs
    copy(rp, full.data(), n);
    mullo_n(low.data(), ap, bp + h, rest); // a0_low * b1
    Limb carry = add_n(rp + h, rp + h, low.data(), rest);
    CAMP_ASSERT(h + rest == n);
    (void)carry; // bits beyond B^n are discarded by definition
    mullo_n(low.data(), ap + h, bp, rest); // a1 * b0_low
    carry = add_n(rp + h, rp + h, low.data(), rest);
    (void)carry;
}

void
divexact(Limb* qp, const Limb* ap, std::size_t an, const Limb* dp,
         std::size_t dn)
{
    CAMP_ASSERT(an >= dn && dn >= 1 && dp[dn - 1] != 0);
    const std::size_t qn = an - dn + 1;

    // Strip common trailing zero bits so the low divisor limb is odd.
    std::size_t limb_shift = 0;
    while (dp[limb_shift] == 0)
        ++limb_shift;
    const unsigned bit_shift =
        static_cast<unsigned>(std::countr_zero(dp[limb_shift]));
    std::vector<Limb> d2(dn - limb_shift), a2(an - limb_shift);
    if (bit_shift == 0) {
        copy(d2.data(), dp + limb_shift, d2.size());
        copy(a2.data(), ap + limb_shift, a2.size());
    } else {
        rshift(d2.data(), dp + limb_shift, d2.size(), bit_shift);
        const Limb out =
            rshift(a2.data(), ap + limb_shift, a2.size(), bit_shift);
        CAMP_ASSERT_MSG(out == 0 && (limb_shift == 0 ||
                                     normalized_size(ap, limb_shift) ==
                                         0),
                        "divexact: dividend lacks divisor's 2-adic part");
    }
    const std::size_t dn2 = normalized_size(d2.data(), d2.size());
    CAMP_ASSERT(dn2 >= 1 && (d2[0] & 1));

    // dinv = d[0]^-1 mod B by Newton.
    Limb dinv = d2[0];
    for (int i = 0; i < 5; ++i)
        dinv *= 2 - d2[0] * dinv;
    CAMP_ASSERT(dinv * d2[0] == 1);

    // LSB-first exact division: peel one quotient limb at a time.
    std::vector<Limb> work(a2.begin(), a2.end());
    for (std::size_t i = 0; i < qn; ++i) {
        const Limb q = work[i] * dinv;
        qp[i] = q;
        if (q == 0)
            continue;
        const std::size_t span =
            std::min(dn2, work.size() - i);
        const Limb borrow = submul_1(work.data() + i, d2.data(), span, q);
        if (i + span < work.size()) {
            const Limb b2 = sub_1(work.data() + i + span,
                                  work.data() + i + span,
                                  work.size() - i - span, borrow);
            CAMP_ASSERT(b2 == 0);
        }
        CAMP_ASSERT(work[i] == 0);
    }
    CAMP_ASSERT_MSG(normalized_size(work.data() + qn,
                                    work.size() - qn) == 0,
                    "divexact: division was not exact");
}

Natural
gcd_lehmer(Natural a, Natural b)
{
    if (a < b)
        std::swap(a, b);
    // Lehmer loop: while operands are large, batch ~60 quotient bits
    // using the two leading limbs, then apply the cofactor matrix.
    while (b.size() > 1) {
        // Leading 128 bits of a and the same-aligned bits of b.
        const std::uint64_t shift = a.bits() >= 128 ? a.bits() - 128 : 0;
        const Natural as = a >> shift;
        const Natural bs = b >> shift;
        u128 ah = (static_cast<u128>(as.limb(1)) << 64) | as.limb(0);
        u128 bh = (static_cast<u128>(bs.limb(1)) << 64) | bs.limb(0);

        // Extended Euclid on (ah, bh) with cofactors
        // a' = u0 ah - v0 bh (>=0), b' = -u1 ah + v1 bh (>=0).
        std::uint64_t u0 = 1, v0 = 0, u1 = 0, v1 = 1;
        bool progressed = false;
        while (bh != 0) {
            const u128 q128 = ah / bh;
            if (q128 > kLimbMax / 2)
                break;
            const std::uint64_t q = static_cast<std::uint64_t>(q128);
            // Overflow guard on the cofactors.
            if (u1 > (kLimbMax - u0) / (q ? q : 1) ||
                v1 > (kLimbMax - v0) / (q ? q : 1))
                break;
            const u128 r = ah - q128 * bh;
            // Lehmer validity: the true quotient of the full numbers
            // matches while remainders stay well inside the window.
            if (r < static_cast<u128>(u1) + u0 ||
                bh - r < static_cast<u128>(v1) + v0)
                break;
            ah = bh;
            bh = r;
            const std::uint64_t nu = u0 + q * u1;
            const std::uint64_t nv = v0 + q * v1;
            u0 = u1;
            v0 = v1;
            u1 = nu;
            v1 = nv;
            progressed = true;
        }
        if (!progressed) {
            // Fallback: one full Euclid step.
            Natural r = a % b;
            a = std::move(b);
            b = std::move(r);
            continue;
        }
        // Apply the matrix to the full operands:
        // (a, b) <- (u0 a - v0 b, v1 b - u1 a), both nonnegative by the
        // alternating-sign structure of continued-fraction cofactors.
        const Natural ua = a * Natural(u0);
        const Natural vb = b * Natural(v0);
        const Natural ub = b * Natural(v1);
        const Natural va = a * Natural(u1);
        Natural na = ua >= vb ? ua - vb : vb - ua;
        Natural nb = ub >= va ? ub - va : va - ub;
        if (na < nb)
            std::swap(na, nb);
        if (nb >= b) {
            // Approximation failed to shrink the pair; take one exact
            // Euclid step instead (keeps termination unconditional).
            Natural r = a % b;
            a = std::move(b);
            b = std::move(r);
            continue;
        }
        a = std::move(na);
        b = std::move(nb);
    }
    // Small tail: binary gcd via the existing routine.
    return Natural::gcd(a, b);
}

} // namespace camp::mpn
