/**
 * @file
 * Limb type and conventions for the natural-number kernel layer.
 *
 * The mpn layer mirrors GMP's MPN conventions (the substrate the paper's
 * software stack is built on, Figure 1):
 *  - A natural number is an array of limbs, least significant first.
 *  - Sizes are in limbs. A value of size n has rp[n-1] possibly zero only
 *    where a function documents it; "normalized" means the top limb is
 *    nonzero (or the size is 0 for the value 0).
 *  - Result areas must not partially overlap sources unless a function
 *    documents in-place support.
 */
#ifndef CAMP_MPN_LIMB_HPP
#define CAMP_MPN_LIMB_HPP

#include <cstddef>
#include <cstdint>

#include "support/bits.hpp"

namespace camp::mpn {

/** Machine limb: 64-bit, matching the host word the CPU baseline uses. */
using Limb = std::uint64_t;

/** Bits per limb. */
inline constexpr int kLimbBits = 64;

/** All-ones limb. */
inline constexpr Limb kLimbMax = ~static_cast<Limb>(0);

/** Number of limbs needed to hold @p bits bits. */
constexpr std::size_t
limbs_for_bits(std::uint64_t bits)
{
    return static_cast<std::size_t>((bits + kLimbBits - 1) / kLimbBits);
}

} // namespace camp::mpn

#endif // CAMP_MPN_LIMB_HPP
