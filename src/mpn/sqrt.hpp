/**
 * @file
 * Integer square root with remainder via Zimmermann's Karatsuba square
 * root [61] — the algorithm the paper cites for GMP's sqrt of naturals.
 */
#ifndef CAMP_MPN_SQRT_HPP
#define CAMP_MPN_SQRT_HPP

#include <cstddef>

#include "mpn/limb.hpp"

namespace camp::mpn {

/**
 * Compute s = floor(sqrt(a)) and r = a - s^2.
 *
 * @param sp  ceil(an / 2) limbs
 * @param rp  an limbs (zero padded); may be null if the remainder is
 *            not wanted
 * @param ap  an limbs, an >= 1
 * @return    normalized size of the remainder
 */
std::size_t sqrtrem(Limb* sp, Limb* rp, const Limb* ap, std::size_t an);

} // namespace camp::mpn

#endif // CAMP_MPN_SQRT_HPP
