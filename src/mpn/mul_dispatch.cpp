/**
 * @file
 * Algorithm dispatch for mul(): schoolbook / Karatsuba / Toom-3/4/6 /
 * SSA by operand size, with block decomposition for heavily unbalanced
 * operands — the same threshold-driven policy structure GMP and the
 * paper's MPApca library use (§V-C).
 */
#include <cstdlib>
#include <vector>

#include "mpn/basic.hpp"
#include "mpn/mul.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace camp::mpn {

namespace {

/** Products below this many (smaller-operand) limbs are not observed:
 * tracing/metrics per schoolbook leaf would dominate the work. */
constexpr std::size_t kObserveLimbs = 16;

/** Registered-once metric handles for the mul hot path (hot-path cost
 * after the first call: one static-init guard load + relaxed RMWs). */
struct MulMetrics
{
    support::metrics::Counter* algo[6];
    support::metrics::Counter* calls;
    support::metrics::Histogram* bits;
};

MulMetrics&
mul_metrics()
{
    static MulMetrics* m = [] {
        namespace metrics = support::metrics;
        auto* mm = new MulMetrics;
        mm->algo[0] = &metrics::counter("mpn.mul.algo.schoolbook");
        mm->algo[1] = &metrics::counter("mpn.mul.algo.karatsuba");
        mm->algo[2] = &metrics::counter("mpn.mul.algo.toom3");
        mm->algo[3] = &metrics::counter("mpn.mul.algo.toom4");
        mm->algo[4] = &metrics::counter("mpn.mul.algo.toom6");
        mm->algo[5] = &metrics::counter("mpn.mul.algo.ssa");
        mm->calls = &metrics::counter("mpn.mul.calls");
        mm->bits = &metrics::histogram("mpn.mul.bits");
        return mm;
    }();
    return *m;
}

/** Index into MulMetrics::algo, mirroring mul_algorithm_name. */
int
algo_index(std::size_t n, const MulTuning& t)
{
    if (n < t.karatsuba)
        return 0;
    if (n < t.toom3)
        return 1;
    if (n < t.toom4)
        return 2;
    if (n < t.toom6)
        return 3;
    if (n < t.ssa)
        return 4;
    return 5;
}

/** CAMP_MUL_THRESH_<NAME> override in limbs, if set and >= 1. */
void
env_threshold(const char* name, std::size_t& value)
{
    if (const char* env = std::getenv(name)) {
        const long long v = std::strtoll(env, nullptr, 10);
        if (v >= 1)
            value = static_cast<std::size_t>(v);
    }
}

} // namespace

bool
mul_tuning_monotone(const MulTuning& t)
{
    return t.karatsuba >= 2 && t.karatsuba < t.toom3 &&
           t.toom3 < t.toom4 && t.toom4 < t.toom6 && t.toom6 < t.ssa;
}

MulTuning&
mul_tuning()
{
    static MulTuning tuning = [] {
        MulTuning t;
        env_threshold("CAMP_MUL_THRESH_KARATSUBA", t.karatsuba);
        env_threshold("CAMP_MUL_THRESH_TOOM3", t.toom3);
        env_threshold("CAMP_MUL_THRESH_TOOM4", t.toom4);
        env_threshold("CAMP_MUL_THRESH_TOOM6", t.toom6);
        env_threshold("CAMP_MUL_THRESH_SSA", t.ssa);
        env_threshold("CAMP_MUL_THRESH_PARALLEL", t.parallel);
        CAMP_ASSERT_MSG(mul_tuning_monotone(t),
                        "mul thresholds must satisfy karatsuba < toom3 "
                        "< toom4 < toom6 < ssa (check CAMP_MUL_THRESH_* "
                        "overrides)");
        return t;
    }();
    return tuning;
}

bool
mul_should_fork(std::size_t bn)
{
    return bn >= mul_tuning().parallel &&
           support::ThreadPool::global().parallel() &&
           support::parallel_allowed();
}

const char*
mul_algorithm_name(std::size_t n, const MulTuning& t)
{
    if (n < t.karatsuba)
        return "schoolbook";
    if (n < t.toom3)
        return "karatsuba";
    if (n < t.toom4)
        return "toom3";
    if (n < t.toom6)
        return "toom4";
    if (n < t.ssa)
        return "toom6";
    return "ssa";
}

namespace {

/**
 * Balanced-ish product: an >= bn > an/2 after normalization; picks the
 * best algorithm whose split-block requirement b covers.
 */
void
mul_balanced(Limb* rp, const Limb* ap, std::size_t an,
             const Limb* bp, std::size_t bn)
{
    const MulTuning& t = mul_tuning();
    if (bn < t.karatsuba) {
        mul_basecase(rp, ap, an, bp, bn);
        return;
    }
    // Toom-k requires bn > (k-1) * ceil(an / k).
    auto toom_ok = [&](unsigned k) {
        const std::size_t m = (an + k - 1) / k;
        return bn > (k - 1) * m;
    };
    if (bn >= t.ssa) {
        mul_ssa(rp, ap, an, bp, bn);
    } else if (bn >= t.toom6 && toom_ok(6)) {
        mul_toom(rp, ap, an, bp, bn, 6);
    } else if (bn >= t.toom4 && toom_ok(4)) {
        mul_toom(rp, ap, an, bp, bn, 4);
    } else if (bn >= t.toom3 && toom_ok(3)) {
        mul_toom(rp, ap, an, bp, bn, 3);
    } else {
        mul_karatsuba(rp, ap, an, bp, bn);
    }
}

} // namespace

void
mul(Limb* rp, const Limb* ap, std::size_t an, const Limb* bp, std::size_t bn)
{
    CAMP_ASSERT(an >= bn && bn >= 1);
    const std::size_t rn = an + bn;
    // Internal callers pass unnormalized slices; renormalize here and
    // keep the contract that the full rn limbs of rp are written.
    std::size_t na = normalized_size(ap, an);
    std::size_t nb = normalized_size(bp, bn);
    if (na < nb) {
        std::swap(ap, bp);
        std::swap(na, nb);
    }
    if (nb == 0) {
        zero(rp, rn);
        return;
    }
    zero(rp + na + nb, rn - na - nb);
    an = na;
    bn = nb;

    const bool observe = bn >= kObserveLimbs;
    support::trace::Span span(observe ? "mpn.mul" : nullptr, "mpn");
    if (observe) {
        MulMetrics& m = mul_metrics();
        m.calls->add();
        m.bits->record(static_cast<std::uint64_t>(an) * kLimbBits);
        m.algo[algo_index(bn, mul_tuning())]->add();
        span.arg("bits_a", static_cast<double>(an) * kLimbBits);
        span.arg("bits_b", static_cast<double>(bn) * kLimbBits);
    }

    if (bn == 1) {
        rp[an] = mul_1(rp, ap, an, bp[0]);
        return;
    }
    if (2 * bn > an) {
        mul_balanced(rp, ap, an, bp, bn);
        return;
    }

    // Heavily unbalanced: process a in bn-limb blocks, accumulating
    // shifted balanced products (GMP's mul_basecase-free block walk).
    std::vector<Limb> tmp(2 * bn);
    std::size_t done = 0; // limbs of a consumed
    while (done < an) {
        const std::size_t chunk = std::min(bn, an - done);
        Limb* dst = rp + done;
        if (chunk >= bn) {
            if (done == 0) {
                mul_balanced(dst, ap, chunk, bp, bn);
            } else {
                mul_balanced(tmp.data(), ap + done, chunk, bp, bn);
                // dst[0..bn) already holds low halves of previous sums;
                // add the low half, then copy/add the high half.
                Limb carry = add_n(dst, dst, tmp.data(), bn);
                carry = add_1(dst + bn, tmp.data() + bn, bn, carry);
                CAMP_ASSERT(carry == 0);
            }
        } else {
            // Final short chunk.
            if (bn >= chunk)
                mul(tmp.data(), bp, bn, ap + done, chunk);
            else
                mul(tmp.data(), ap + done, chunk, bp, bn);
            if (done == 0) {
                copy(dst, tmp.data(), chunk + bn);
            } else {
                Limb carry = add_n(dst, dst, tmp.data(), bn);
                carry = add_1(dst + bn, tmp.data() + bn, chunk, carry);
                CAMP_ASSERT(carry == 0);
            }
        }
        done += chunk;
    }
}

void
sqr(Limb* rp, const Limb* ap, std::size_t n)
{
    CAMP_ASSERT(n >= 1);
    const std::size_t nn = normalized_size(ap, n);
    if (nn == 0) {
        zero(rp, 2 * n);
        return;
    }
    zero(rp + 2 * nn, 2 * (n - nn));
    if (nn < mul_tuning().karatsuba) {
        sqr_basecase(rp, ap, nn);
        return;
    }
    mul(rp, ap, nn, ap, nn);
}

} // namespace camp::mpn
