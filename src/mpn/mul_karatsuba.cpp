/**
 * @file
 * Karatsuba (Toom-2) multiplication. The three half-size products are
 * independent: above the parallel threshold z0 and z2 fork onto the
 * work-stealing pool while the calling thread computes the middle
 * product, then joins before the (sequential) recombination — the
 * classic fork/join shape, bit-identical to the serial schedule
 * because every product writes a disjoint region and recombination
 * happens after the join in program order. Temporaries come from the
 * per-thread scratch arena, so the hot recursion allocates nothing
 * from the system in steady state.
 */
#include "mpn/basic.hpp"
#include "mpn/mul.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace camp::mpn {

namespace {

/** rp = ap + bp (an >= bn), appending the carry; returns result size. */
std::size_t
add_ext(Limb* rp, const Limb* ap, std::size_t an,
        const Limb* bp, std::size_t bn)
{
    const Limb carry = add(rp, ap, an, bp, bn);
    if (carry) {
        rp[an] = carry;
        return an + 1;
    }
    return an;
}

} // namespace

void
mul_karatsuba(Limb* rp, const Limb* ap, std::size_t an,
              const Limb* bp, std::size_t bn)
{
    CAMP_ASSERT(an >= bn && 2 * bn > an && bn >= 2);
    const std::size_t m = an >> 1;
    // a = a1*B^m + a0, b = b1*B^m + b0;
    // a*b = z2*B^2m + z1*B^m + z0 with z1 = (a0+a1)(b0+b1) - z0 - z2.
    const Limb* a0 = ap;
    const Limb* a1 = ap + m;
    const Limb* b0 = bp;
    const Limb* b1 = bp + m;
    const std::size_t a1n = an - m;
    const std::size_t b1n = bn - m;

    support::ScratchFrame scratch;
    Limb* sa = scratch.alloc(a1n + 1);
    Limb* sb = scratch.alloc(m + 2);
    Limb* t = scratch.alloc(a1n + m + 3);

    // z0 and z2 go straight into their final positions in rp; they are
    // independent of each other and of the middle product.
    support::TaskGroup fork;
    const bool parallel = mul_should_fork(bn);
    if (parallel) {
        fork.run([=] { mul(rp, a0, m, b0, m); });             // rp[0..2m)
        fork.run([=] { mul(rp + 2 * m, a1, a1n, b1, b1n); }); // rp[2m..)
    } else {
        mul(rp, a0, m, b0, m);
        mul(rp + 2 * m, a1, a1n, b1, b1n);
    }

    const std::size_t san = add_ext(sa, a1, a1n, a0, m);
    std::size_t sbn;
    if (b1n >= m)
        sbn = add_ext(sb, b1, b1n, b0, m);
    else
        sbn = add_ext(sb, b0, m, b1, b1n);

    if (san >= sbn)
        mul(t, sa, san, sb, sbn);
    else
        mul(t, sb, sbn, sa, san);
    std::size_t tn = normalized_size(t, san + sbn);

    if (parallel)
        fork.wait();

    // t -= z0; t -= z2 (both are <= t mathematically).
    const std::size_t z0n = normalized_size(rp, 2 * m);
    const std::size_t z2n = normalized_size(rp + 2 * m, an + bn - 2 * m);
    Limb borrow = sub(t, t, tn, rp, z0n);
    CAMP_ASSERT(borrow == 0);
    borrow = sub(t, t, tn, rp + 2 * m, z2n);
    CAMP_ASSERT(borrow == 0);
    tn = normalized_size(t, tn);

    // rp += t * B^m.
    const Limb carry = add(rp + m, rp + m, an + bn - m, t, tn);
    CAMP_ASSERT(carry == 0);
}

} // namespace camp::mpn
