/**
 * @file
 * Operation observation hooks. Natural's operators announce kernel
 * operations (Multiply, Add, Shift, ... — the paper's Figure 2 operator
 * classes) to registered hooks, which the profiler (Fig. 2 breakdown)
 * and the MPApca cost ledger (Fig. 13 simulated time/energy) implement.
 * With no hooks registered the overhead is one branch per operation.
 */
#ifndef CAMP_MPN_OPHOOK_HPP
#define CAMP_MPN_OPHOOK_HPP

#include <cstdint>

namespace camp::mpn {

/** Kernel / low-level operator kinds at the Natural API boundary. */
enum class OpKind
{
    Mul,
    Sqr,
    Add,
    Sub,
    Shift,
    Div,
    Sqrt,
    Gcd,
    Other,
};

/** Human-readable name for an OpKind. */
const char* op_kind_name(OpKind kind);

/** Observer interface for Natural-level operations. */
class OpHook
{
  public:
    virtual ~OpHook() = default;

    /** Called before the operation; bits are operand bit sizes. */
    virtual void on_enter(OpKind kind, std::uint64_t bits_a,
                          std::uint64_t bits_b) = 0;

    /** Called after the operation completes. */
    virtual void on_exit(OpKind kind) = 0;
};

/** Register / unregister a hook (max 4; not thread safe by design —
 * instrumented runs are single threaded like the paper's baseline).
 * Registration beyond the table throws camp::ResourceExhausted. */
void add_op_hook(OpHook* hook);
void remove_op_hook(OpHook* hook);

/** True if any hook is registered (fast path check). */
bool op_hooks_active();

/**
 * RAII: suppress OpScope announcements on the calling thread. Pool
 * worker tasks (sim::BatchEngine products, internal golden checks)
 * run under this so sim-internal arithmetic is neither attributed as
 * application kernel work nor fed to hooks (the MPApca Ledger) that
 * assume the single-threaded op nesting of one logical app thread.
 */
class OpHookSuspend
{
  public:
    OpHookSuspend();
    ~OpHookSuspend();
    OpHookSuspend(const OpHookSuspend&) = delete;
    OpHookSuspend& operator=(const OpHookSuspend&) = delete;
};

/** True while an OpHookSuspend is live on this thread. */
bool op_hooks_suspended();

/** RAII scope announcing one operation to all hooks. */
class OpScope
{
  public:
    OpScope(OpKind kind, std::uint64_t bits_a, std::uint64_t bits_b);
    ~OpScope();

    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

  private:
    OpKind kind_;
    bool active_;
};

} // namespace camp::mpn

#endif // CAMP_MPN_OPHOOK_HPP
