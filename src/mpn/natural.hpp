/**
 * @file
 * Natural: an arbitrary-precision natural number value type over the mpn
 * kernels — the public face of the GMP-MPN-equivalent layer (Figure 1's
 * "Library for naturals").
 */
#ifndef CAMP_MPN_NATURAL_HPP
#define CAMP_MPN_NATURAL_HPP

#include <compare>
#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mpn/limb.hpp"

namespace camp::mpn {

/**
 * Arbitrary-precision natural number. The limb vector is always
 * normalized (no high zero limbs); zero is the empty vector.
 */
class Natural
{
  public:
    /** Zero. */
    Natural() = default;

    /** From a machine word. */
    Natural(std::uint64_t v) // NOLINT: implicit by design, like GMP
    {
        if (v != 0)
            limbs_.push_back(v);
    }

    /** From a decimal string; throws std::invalid_argument on bad input. */
    static Natural from_decimal(std::string_view s);

    /** From a hexadecimal string (no 0x prefix). */
    static Natural from_hex(std::string_view s);

    /** From a little-endian limb vector (normalizes). */
    static Natural from_limbs(std::vector<Limb> limbs);

    /** Uniformly random value with exactly @p bits significant bits. */
    template <typename RngT>
    static Natural
    random_bits(RngT& rng, std::uint64_t bits)
    {
        if (bits == 0)
            return Natural();
        std::vector<Limb> v(limbs_for_bits(bits));
        for (auto& limb : v)
            limb = rng.next();
        const unsigned top = static_cast<unsigned>((bits - 1) % 64);
        v.back() &= top == 63 ? kLimbMax
                              : ((static_cast<Limb>(1) << (top + 1)) - 1);
        v.back() |= static_cast<Limb>(1) << top;
        return from_limbs(std::move(v));
    }

    bool is_zero() const { return limbs_.empty(); }
    bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }

    /** Size in limbs (0 for zero). */
    std::size_t size() const { return limbs_.size(); }

    /** Number of significant bits (0 for zero). */
    std::uint64_t bits() const;

    /** Limb i (0 beyond the top). */
    Limb
    limb(std::size_t i) const
    {
        return i < limbs_.size() ? limbs_[i] : 0;
    }

    /** Bit i (0 = LSB; 0 beyond the top). */
    bool bit(std::uint64_t i) const;

    const Limb* data() const { return limbs_.data(); }
    const std::vector<Limb>& limbs() const { return limbs_; }

    /** Low 64 bits of the value. */
    std::uint64_t
    to_uint64() const
    {
        return limbs_.empty() ? 0 : limbs_[0];
    }

    /** Value as double (may overflow to inf). */
    double to_double() const;

    std::string to_decimal() const;
    std::string to_hex() const;

    friend Natural operator+(const Natural& a, const Natural& b);
    /** Natural subtraction; throws std::invalid_argument if a < b. */
    friend Natural operator-(const Natural& a, const Natural& b);
    friend Natural operator*(const Natural& a, const Natural& b);
    friend Natural operator/(const Natural& a, const Natural& b);
    friend Natural operator%(const Natural& a, const Natural& b);
    friend Natural operator<<(const Natural& a, std::uint64_t cnt);
    friend Natural operator>>(const Natural& a, std::uint64_t cnt);
    friend Natural operator&(const Natural& a, const Natural& b);
    friend Natural operator|(const Natural& a, const Natural& b);
    friend Natural operator^(const Natural& a, const Natural& b);

    Natural& operator+=(const Natural& b) { return *this = *this + b; }
    Natural& operator-=(const Natural& b) { return *this = *this - b; }
    Natural& operator*=(const Natural& b) { return *this = *this * b; }
    Natural& operator<<=(std::uint64_t c) { return *this = *this << c; }
    Natural& operator>>=(std::uint64_t c) { return *this = *this >> c; }

    friend bool
    operator==(const Natural& a, const Natural& b)
    {
        return a.limbs_ == b.limbs_;
    }
    friend std::strong_ordering operator<=>(const Natural& a,
                                            const Natural& b);

    /** Quotient and remainder in one division; throws on b == 0. */
    static std::pair<Natural, Natural> divrem(const Natural& a,
                                              const Natural& b);

    /** floor(sqrt(a)) and the remainder a - s^2. */
    static std::pair<Natural, Natural> sqrtrem(const Natural& a);

    /** floor(sqrt(a)). */
    static Natural isqrt(const Natural& a);

    /** a^e by binary exponentiation. */
    static Natural pow(const Natural& a, std::uint64_t e);

    /** 10^e (cached internally for string conversion). */
    static Natural pow10(std::uint64_t e);

    /** Number of set bits. */
    std::uint64_t popcount() const;

    /** Index of the lowest set bit (0 = LSB); undefined semantics for
     * zero are avoided by returning bits() (i.e. one past the top). */
    std::uint64_t scan1() const;

    /** Number of trailing zero bits (== scan1 for nonzero values). */
    std::uint64_t trailing_zeros() const;

    /** Little-endian byte serialization (empty for zero). */
    std::vector<std::uint8_t> to_bytes() const;

    /** Parse little-endian bytes. */
    static Natural from_bytes(const std::uint8_t* data,
                              std::size_t size);

    /** Greatest common divisor (binary GCD). */
    static Natural gcd(Natural a, Natural b);

  private:
    void normalize();

    std::vector<Limb> limbs_;
};

} // namespace camp::mpn

#endif // CAMP_MPN_NATURAL_HPP
