#include "mpn/ophook.hpp"

#include <array>
#include <cstddef>
#include <string>

#include "support/assert.hpp"
#include "support/errors.hpp"

namespace camp::mpn {

namespace {

std::array<OpHook*, 4> g_hooks{};
std::size_t g_hook_count = 0;

/** OpHookSuspend nesting depth for the calling thread. */
thread_local unsigned t_suspend_depth = 0;

} // namespace

const char*
op_kind_name(OpKind kind)
{
    switch (kind) {
    case OpKind::Mul: return "Mul";
    case OpKind::Sqr: return "Sqr";
    case OpKind::Add: return "Add";
    case OpKind::Sub: return "Sub";
    case OpKind::Shift: return "Shift";
    case OpKind::Div: return "Div";
    case OpKind::Sqrt: return "Sqrt";
    case OpKind::Gcd: return "Gcd";
    case OpKind::Other: return "Other";
    }
    return "?";
}

void
add_op_hook(OpHook* hook)
{
    // The table is a fixed array so announcing an op stays a plain
    // loop on the hot path; registration beyond it is a caller bug
    // that must not pass silently (in release builds the old assert
    // compiled out and the write ran off the array).
    if (g_hook_count >= g_hooks.size())
        throw ResourceExhausted(
            "add_op_hook: hook table full (" +
            std::to_string(g_hooks.size()) +
            " hooks registered); remove one first");
    g_hooks[g_hook_count++] = hook;
}

void
remove_op_hook(OpHook* hook)
{
    for (std::size_t i = 0; i < g_hook_count; ++i) {
        if (g_hooks[i] == hook) {
            for (std::size_t j = i + 1; j < g_hook_count; ++j)
                g_hooks[j - 1] = g_hooks[j];
            --g_hook_count;
            return;
        }
    }
    CAMP_ASSERT_MSG(false, "remove_op_hook: hook not registered");
}

bool
op_hooks_active()
{
    return g_hook_count != 0;
}

OpHookSuspend::OpHookSuspend()
{
    ++t_suspend_depth;
}

OpHookSuspend::~OpHookSuspend()
{
    CAMP_ASSERT(t_suspend_depth > 0);
    --t_suspend_depth;
}

bool
op_hooks_suspended()
{
    return t_suspend_depth != 0;
}

OpScope::OpScope(OpKind kind, std::uint64_t bits_a, std::uint64_t bits_b)
    : kind_(kind), active_(g_hook_count != 0 && t_suspend_depth == 0)
{
    if (!active_)
        return;
    for (std::size_t i = 0; i < g_hook_count; ++i)
        g_hooks[i]->on_enter(kind, bits_a, bits_b);
}

OpScope::~OpScope()
{
    if (!active_)
        return;
    for (std::size_t i = g_hook_count; i-- > 0;)
        g_hooks[i]->on_exit(kind_);
}

} // namespace camp::mpn
