/**
 * @file
 * Multiplication kernels: schoolbook, Karatsuba (Toom-2), generic
 * Toom-k (k = 3, 4, 6), and Schönhage–Strassen (SSA) — the full fast
 * multiplication inventory of Table I.
 *
 * All entry points write the full (an + bn)-limb product and require the
 * result area to be disjoint from both sources.
 */
#ifndef CAMP_MPN_MUL_HPP
#define CAMP_MPN_MUL_HPP

#include <cstddef>

#include "mpn/limb.hpp"

namespace camp::mpn {

/** rp = ap * b; returns the high limb (not stored). In-place allowed. */
Limb mul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);

/** rp += ap * b; returns the carry limb out of rp[n-1]. */
Limb addmul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);

/** rp -= ap * b; returns the borrow limb out of rp[n-1]. */
Limb submul_1(Limb* rp, const Limb* ap, std::size_t n, Limb b);

/** Schoolbook product: rp[0..an+bn) = a * b. Requires an >= bn >= 1. */
void mul_basecase(Limb* rp, const Limb* ap, std::size_t an,
                  const Limb* bp, std::size_t bn);

/** Schoolbook square: rp[0..2n) = a^2, exploiting symmetry. */
void sqr_basecase(Limb* rp, const Limb* ap, std::size_t n);

/**
 * Karatsuba (Toom-2) product for mildly unbalanced operands:
 * requires an >= bn > an / 2.
 */
void mul_karatsuba(Limb* rp, const Limb* ap, std::size_t an,
                   const Limb* bp, std::size_t bn);

/**
 * Generic Toom-k product over evaluation points {0, 1, .., 2k-3, inf}
 * with interpolation by integer forward differences. Requires
 * k in {3, 4, 6} and an >= bn > (k - 1) * ceil(an / k) (i.e. the top
 * split block of b is nonempty).
 */
void mul_toom(Limb* rp, const Limb* ap, std::size_t an,
              const Limb* bp, std::size_t bn, unsigned k);

/**
 * Schönhage–Strassen product via negacyclic FFT over Z/(2^K + 1).
 * Requires an >= bn >= 1.
 */
void mul_ssa(Limb* rp, const Limb* ap, std::size_t an,
             const Limb* bp, std::size_t bn);

/**
 * Algorithm-selection thresholds in limbs, mirroring GMP's compile-time
 * tuned thresholds (paper §V-C: MPApca retunes these for the hardware
 * backend, which bench/fig11_mul_sweep exercises).
 */
struct MulTuning
{
    std::size_t karatsuba = 24;  ///< below: schoolbook
    std::size_t toom3 = 96;      ///< below: Karatsuba
    std::size_t toom4 = 288;     ///< below: Toom-3
    std::size_t toom6 = 800;     ///< below: Toom-4
    std::size_t ssa = 3200;      ///< below: Toom-6, above: SSA
    /** Smaller-operand size (limbs) from which the recursive kernels
     * fork their independent sub-multiplications onto the global
     * thread pool. Forking never changes results, only placement. */
    std::size_t parallel = 512;
};

/**
 * True iff the algorithm thresholds are strictly increasing
 * (karatsuba < toom3 < toom4 < toom6 < ssa) and every fast algorithm
 * engages above the schoolbook floor. Dispatch correctness does not
 * depend on monotone thresholds, but a non-monotone set silently
 * shadows algorithms, so mul_tuning() asserts this at load and
 * tuning experiments should re-check after overriding.
 */
bool mul_tuning_monotone(const MulTuning& tuning);

/**
 * Active thresholds for the dispatching mul(). First use applies
 * environment overrides CAMP_MUL_THRESH_KARATSUBA / _TOOM3 / _TOOM4 /
 * _TOOM6 / _SSA / _PARALLEL (limb counts), then debug-asserts
 * mul_tuning_monotone.
 */
MulTuning& mul_tuning();

/** True when a kernel at smaller-operand size @p bn should fork its
 * sub-products: above the parallel threshold, pool has workers, and
 * no support::SerialGuard is active on this thread. */
bool mul_should_fork(std::size_t bn);

/** Names of the regime mul() would pick for a balanced n-limb product. */
const char* mul_algorithm_name(std::size_t n, const MulTuning& tuning);

/**
 * General product rp[0..an+bn) = a * b with algorithm dispatch and
 * block decomposition for heavily unbalanced operands.
 * Requires an >= bn >= 1.
 */
void mul(Limb* rp, const Limb* ap, std::size_t an,
         const Limb* bp, std::size_t bn);

/** Square via mul dispatch (schoolbook squaring below Karatsuba). */
void sqr(Limb* rp, const Limb* ap, std::size_t n);

} // namespace camp::mpn

#endif // CAMP_MPN_MUL_HPP
