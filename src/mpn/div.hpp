/**
 * @file
 * Division kernels: single-limb division, schoolbook (Knuth Algorithm D),
 * and recursive Burnikel–Ziegler division — Table I's "Division:
 * Schoolbook O(n^2) / Karatsuba O(n^m log n)" operators.
 */
#ifndef CAMP_MPN_DIV_HPP
#define CAMP_MPN_DIV_HPP

#include <cstddef>

#include "mpn/limb.hpp"

namespace camp::mpn {

/**
 * qp[0..n) = ap / d, returns the remainder. qp may alias ap.
 * Requires d != 0.
 */
Limb divrem_1(Limb* qp, const Limb* ap, std::size_t n, Limb d);

/**
 * General division with remainder: a = q * d + r with 0 <= r < d.
 *
 * @param qp  quotient, an - dn + 1 limbs (may have a zero top limb)
 * @param rp  remainder, dn limbs (zero padded)
 * @param ap  dividend, an limbs
 * @param dp  divisor, dn limbs, normalized (top limb nonzero)
 *
 * Requires an >= dn >= 1; ap/dp are not modified; qp and rp must not
 * alias the inputs or each other.
 */
void divrem(Limb* qp, Limb* rp, const Limb* ap, std::size_t an,
            const Limb* dp, std::size_t dn);

/** Threshold (divisor limbs) above which Burnikel–Ziegler is used. */
struct DivTuning
{
    std::size_t bz = 48;
};

/** Active division thresholds. */
DivTuning& div_tuning();

} // namespace camp::mpn

#endif // CAMP_MPN_DIV_HPP
