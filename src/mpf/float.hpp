/**
 * @file
 * Float: arbitrary-precision binary floating point over Natural — the
 * GMP-MPF-equivalent layer (Figure 1). Value = (-1)^sign * mant * 2^exp
 * with a per-value working precision; arithmetic truncates toward zero
 * at `prec` mantissa bits (GMP MPF semantics, not MPFR correct
 * rounding — the paper's stack treats MPF "with little overhead").
 */
#ifndef CAMP_MPF_FLOAT_HPP
#define CAMP_MPF_FLOAT_HPP

#include <cstdint>
#include <string>

#include "mpn/natural.hpp"
#include "mpz/integer.hpp"

namespace camp::mpf {

using mpn::Natural;
using mpz::Integer;

/** Arbitrary-precision binary float with explicit working precision. */
class Float
{
  public:
    /** Zero at default precision (64 bits). */
    Float() = default;

    /** Zero at @p prec mantissa bits. */
    static Float with_prec(std::uint64_t prec);

    /** From an integer, keeping full precision (at least @p prec). */
    static Float from_integer(const Integer& v, std::uint64_t prec);
    static Float from_natural(const Natural& v, std::uint64_t prec);

    /** From a double (exact; doubles are dyadic). */
    static Float from_double(double v, std::uint64_t prec);

    /** mant * 2^exp directly. */
    static Float from_parts(Natural mant, std::int64_t exp, bool negative,
                            std::uint64_t prec);

    bool is_zero() const { return mant_.is_zero(); }
    bool is_negative() const { return negative_; }
    std::uint64_t prec() const { return prec_; }
    const Natural& mantissa() const { return mant_; }
    std::int64_t exponent() const { return exp_; }

    /** Exponent of the leading bit: value in [2^e, 2^(e+1)). */
    std::int64_t
    magnitude_exp() const
    {
        return exp_ + static_cast<std::int64_t>(mant_.bits()) - 1;
    }

    /** Copy re-truncated to @p prec bits. */
    Float rounded_to(std::uint64_t prec) const;

    friend Float operator-(const Float& a);
    friend Float operator+(const Float& a, const Float& b);
    friend Float operator-(const Float& a, const Float& b);
    friend Float operator*(const Float& a, const Float& b);
    friend Float operator/(const Float& a, const Float& b);

    Float& operator+=(const Float& b) { return *this = *this + b; }
    Float& operator-=(const Float& b) { return *this = *this - b; }
    Float& operator*=(const Float& b) { return *this = *this * b; }

    /** sqrt(a); throws std::invalid_argument for negative input. */
    static Float sqrt(const Float& a);

    /** |a|. */
    static Float abs(const Float& a);

    /** Multiply by 2^k (exact). */
    Float ldexp(std::int64_t k) const;

    friend bool operator==(const Float& a, const Float& b);
    friend std::strong_ordering operator<=>(const Float& a,
                                            const Float& b);

    double to_double() const;

    /** Truncated integer part (toward zero) as Integer. */
    Integer to_integer() const;

    /** Decimal string with @p digits fractional digits (truncated). */
    std::string to_decimal(std::uint64_t digits) const;

  private:
    void normalize();

    bool negative_ = false;
    Natural mant_;
    std::int64_t exp_ = 0;
    std::uint64_t prec_ = 64;
};

} // namespace camp::mpf

#endif // CAMP_MPF_FLOAT_HPP
