/**
 * @file
 * Elementary transcendental functions over Float — the MPFR-layer
 * functionality of the paper's software stack (Figure 1: "high-level
 * functions with error analysis, e.g. transcendental", decomposed to
 * low-level operators via iterative methods).
 *
 * pi uses Machin's formula with Taylor-expanded arctangents of small
 * reciprocals; sin/cos use Taylor series after range checks. All
 * results carry a few guard bits and are truncated to the requested
 * precision; absolute error is below 2^-(prec-2) for |x| <= 2 pi.
 */
#ifndef CAMP_MPF_ELEMENTARY_HPP
#define CAMP_MPF_ELEMENTARY_HPP

#include <cstdint>

#include "mpf/float.hpp"

namespace camp::mpf {

/** pi at @p prec mantissa bits (cached per precision). */
Float pi_float(std::uint64_t prec);

/** arctan(1/m) for integer m >= 2 by Taylor series. */
Float atan_reciprocal(std::uint64_t m, std::uint64_t prec);

/** sin(x) for |x| <= 2 pi + 1. */
Float sin(const Float& x, std::uint64_t prec);

/** cos(x) for |x| <= 2 pi + 1. */
Float cos(const Float& x, std::uint64_t prec);

/** exp(x) for |x| <= 64 by argument-halved Taylor series. */
Float exp(const Float& x, std::uint64_t prec);

} // namespace camp::mpf

#endif // CAMP_MPF_ELEMENTARY_HPP
