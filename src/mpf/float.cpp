#include "mpf/float.hpp"

#include <cmath>
#include <stdexcept>

#include "support/assert.hpp"

namespace camp::mpf {

void
Float::normalize()
{
    if (mant_.is_zero()) {
        negative_ = false;
        exp_ = 0;
        return;
    }
    const std::uint64_t bits = mant_.bits();
    if (bits > prec_) {
        const std::uint64_t drop = bits - prec_;
        mant_ >>= drop;
        exp_ += static_cast<std::int64_t>(drop);
    }
    // Strip trailing zero limbs cheaply (keeps mantissas compact across
    // long add chains).
    std::uint64_t tz = 0;
    while (mant_.limb(tz / 64) == 0)
        tz += 64;
    if (tz > 0) {
        mant_ >>= tz;
        exp_ += static_cast<std::int64_t>(tz);
    }
}

Float
Float::with_prec(std::uint64_t prec)
{
    Float f;
    f.prec_ = prec == 0 ? 1 : prec;
    return f;
}

Float
Float::from_parts(Natural mant, std::int64_t exp, bool negative,
                  std::uint64_t prec)
{
    Float f = with_prec(prec);
    f.mant_ = std::move(mant);
    f.exp_ = exp;
    f.negative_ = negative && !f.mant_.is_zero();
    f.normalize();
    return f;
}

Float
Float::from_natural(const Natural& v, std::uint64_t prec)
{
    return from_parts(v, 0, false, std::max(prec, v.bits()));
}

Float
Float::from_integer(const Integer& v, std::uint64_t prec)
{
    return from_parts(v.abs(), 0, v.is_negative(),
                      std::max(prec, v.bits()));
}

Float
Float::from_double(double v, std::uint64_t prec)
{
    if (v == 0.0)
        return with_prec(prec);
    const bool neg = v < 0;
    int e = 0;
    const double m = std::frexp(neg ? -v : v, &e); // m in [0.5, 1)
    const auto mant =
        static_cast<std::uint64_t>(std::ldexp(m, 53)); // 53-bit integer
    return from_parts(Natural(mant), e - 53, neg, prec);
}

Float
Float::rounded_to(std::uint64_t prec) const
{
    return from_parts(mant_, exp_, negative_, prec);
}

Float
operator-(const Float& a)
{
    Float r = a;
    if (!r.is_zero())
        r.negative_ = !r.negative_;
    return r;
}

Float
Float::abs(const Float& a)
{
    Float r = a;
    r.negative_ = false;
    return r;
}

Float
Float::ldexp(std::int64_t k) const
{
    Float r = *this;
    if (!r.is_zero())
        r.exp_ += k;
    return r;
}

Float
operator+(const Float& a, const Float& b)
{
    const std::uint64_t prec = std::max(a.prec_, b.prec_);
    if (a.is_zero())
        return b.rounded_to(prec);
    if (b.is_zero())
        return a.rounded_to(prec);

    // Order by magnitude of the top bit so `hi` dominates.
    const Float& hi = a.magnitude_exp() >= b.magnitude_exp() ? a : b;
    const Float& lo = a.magnitude_exp() >= b.magnitude_exp() ? b : a;

    // If lo is entirely below hi's precision window, it cannot affect
    // the truncated result (same-sign case) and affects it by at most
    // one ulp otherwise; GMP-style truncation drops it.
    const std::int64_t gap = hi.magnitude_exp() - lo.magnitude_exp();
    if (gap > static_cast<std::int64_t>(prec) + 2)
        return hi.rounded_to(prec);

    // Align both mantissas to the smaller exponent.
    const std::int64_t ea = hi.exp_, eb = lo.exp_;
    const std::int64_t shared = std::min(ea, eb);
    const Natural ma = hi.mant_ << static_cast<std::uint64_t>(ea - shared);
    const Natural mb = lo.mant_ << static_cast<std::uint64_t>(eb - shared);
    if (hi.negative_ == lo.negative_)
        return Float::from_parts(ma + mb, shared, hi.negative_, prec);
    if (ma >= mb)
        return Float::from_parts(ma - mb, shared, hi.negative_, prec);
    return Float::from_parts(mb - ma, shared, lo.negative_, prec);
}

Float
operator-(const Float& a, const Float& b)
{
    return a + (-b);
}

Float
operator*(const Float& a, const Float& b)
{
    const std::uint64_t prec = std::max(a.prec_, b.prec_);
    if (a.is_zero() || b.is_zero())
        return Float::with_prec(prec);
    return Float::from_parts(a.mant_ * b.mant_, a.exp_ + b.exp_,
                             a.negative_ != b.negative_, prec);
}

Float
operator/(const Float& a, const Float& b)
{
    const std::uint64_t prec = std::max(a.prec_, b.prec_);
    if (b.is_zero())
        throw std::invalid_argument("Float division by zero");
    if (a.is_zero())
        return Float::with_prec(prec);
    // Scale the dividend so the quotient carries prec + 2 bits.
    const std::int64_t scale =
        static_cast<std::int64_t>(prec) + 2 +
        static_cast<std::int64_t>(b.mant_.bits()) -
        static_cast<std::int64_t>(a.mant_.bits());
    const std::uint64_t up = scale > 0 ? static_cast<std::uint64_t>(scale)
                                       : 0;
    const Natural q = (a.mant_ << up) / b.mant_;
    return Float::from_parts(q, a.exp_ - b.exp_ -
                                    static_cast<std::int64_t>(up),
                             a.negative_ != b.negative_, prec);
}

Float
Float::sqrt(const Float& a)
{
    if (a.negative_)
        throw std::invalid_argument("Float::sqrt of negative value");
    if (a.is_zero())
        return with_prec(a.prec_);
    // Scale mantissa to ~2*(prec+2) bits with an even total exponent.
    std::int64_t e = a.exp_;
    Natural m = a.mant_;
    std::int64_t up = 2 * (static_cast<std::int64_t>(a.prec_) + 2) -
                      static_cast<std::int64_t>(m.bits());
    if (up < 0)
        up = 0;
    if ((e - up) % 2 != 0)
        ++up;
    m <<= static_cast<std::uint64_t>(up);
    e -= up;
    const Natural s = Natural::isqrt(m);
    return from_parts(s, e / 2, false, a.prec_);
}

bool
operator==(const Float& a, const Float& b)
{
    // Mantissas are normalized (no trailing zero limbs beyond limb
    // granularity), so compare via subtraction to be safe.
    return (a <=> b) == std::strong_ordering::equal;
}

std::strong_ordering
operator<=>(const Float& a, const Float& b)
{
    if (a.is_zero() && b.is_zero())
        return std::strong_ordering::equal;
    if (a.is_zero())
        return b.negative_ ? std::strong_ordering::greater
                           : std::strong_ordering::less;
    if (b.is_zero())
        return a.negative_ ? std::strong_ordering::less
                           : std::strong_ordering::greater;
    if (a.negative_ != b.negative_)
        return a.negative_ ? std::strong_ordering::less
                           : std::strong_ordering::greater;
    const int sign = a.negative_ ? -1 : 1;
    if (a.magnitude_exp() != b.magnitude_exp()) {
        const bool a_bigger = a.magnitude_exp() > b.magnitude_exp();
        return (a_bigger ? sign : -sign) > 0
                   ? std::strong_ordering::greater
                   : std::strong_ordering::less;
    }
    // Same leading-bit position: align and compare mantissas.
    const std::int64_t shared = std::min(a.exp_, b.exp_);
    const Natural ma = a.mant_ << static_cast<std::uint64_t>(a.exp_ -
                                                             shared);
    const Natural mb = b.mant_ << static_cast<std::uint64_t>(b.exp_ -
                                                             shared);
    const auto mag = ma <=> mb;
    if (mag == std::strong_ordering::equal)
        return std::strong_ordering::equal;
    const bool a_bigger = mag == std::strong_ordering::greater;
    return (a_bigger ? sign : -sign) > 0 ? std::strong_ordering::greater
                                         : std::strong_ordering::less;
}

double
Float::to_double() const
{
    if (is_zero())
        return 0.0;
    // Use the top <= 64 mantissa bits.
    const std::uint64_t bits = mant_.bits();
    const std::uint64_t keep = bits > 64 ? 64 : bits;
    const Natural top = mant_ >> (bits - keep);
    const double m = top.to_double();
    const double v = std::ldexp(
        m, static_cast<int>(exp_ + static_cast<std::int64_t>(bits - keep)));
    return negative_ ? -v : v;
}

Integer
Float::to_integer() const
{
    if (is_zero())
        return Integer();
    if (exp_ >= 0)
        return Integer(mant_ << static_cast<std::uint64_t>(exp_),
                       negative_);
    const std::uint64_t down = static_cast<std::uint64_t>(-exp_);
    return Integer(mant_ >> down, negative_);
}

std::string
Float::to_decimal(std::uint64_t digits) const
{
    // scaled = round-toward-zero of |value| * 10^digits.
    Natural scaled;
    if (exp_ >= 0) {
        scaled = (mant_ << static_cast<std::uint64_t>(exp_)) *
                 Natural::pow10(digits);
    } else {
        scaled = mant_ * Natural::pow10(digits) >>
                 static_cast<std::uint64_t>(-exp_);
    }
    std::string s = scaled.to_decimal();
    if (s.size() <= digits)
        s.insert(0, digits + 1 - s.size(), '0');
    s.insert(s.size() - digits, ".");
    if (negative_)
        s.insert(0, "-");
    return s;
}

} // namespace camp::mpf
