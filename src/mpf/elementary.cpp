#include "mpf/elementary.hpp"

#include <map>
#include <stdexcept>

#include "support/assert.hpp"

namespace camp::mpf {

Float
atan_reciprocal(std::uint64_t m, std::uint64_t prec)
{
    if (m < 2)
        throw std::invalid_argument("atan_reciprocal: need m >= 2");
    // atan(1/m) = sum_k (-1)^k / ((2k+1) m^(2k+1)); each term gains
    // log2(m^2) bits, alternating so truncation error < first dropped
    // term.
    const std::uint64_t work = prec + 16;
    const Float one = Float::from_natural(Natural(1), work);
    const Float m2 =
        Float::from_natural(Natural(m) * Natural(m), work);
    Float term = one / Float::from_natural(Natural(m), work);
    Float sum = Float::with_prec(work);
    std::uint64_t k = 0;
    while (!term.is_zero() &&
           term.magnitude_exp() > -static_cast<std::int64_t>(work)) {
        const Float contribution =
            term / Float::from_natural(Natural(2 * k + 1), work);
        sum = (k & 1) ? sum - contribution : sum + contribution;
        term = term / m2;
        ++k;
    }
    return sum.rounded_to(prec);
}

Float
pi_float(std::uint64_t prec)
{
    static std::map<std::uint64_t, Float> cache;
    const auto hit = cache.find(prec);
    if (hit != cache.end())
        return hit->second;
    // Machin: pi = 16 atan(1/5) - 4 atan(1/239).
    const std::uint64_t work = prec + 8;
    const Float pi = (Float::from_natural(Natural(16), work) *
                          atan_reciprocal(5, work) -
                      Float::from_natural(Natural(4), work) *
                          atan_reciprocal(239, work))
                         .rounded_to(prec);
    cache.emplace(prec, pi);
    return pi;
}

namespace {

/** Shared Taylor loop: sum x^i/i! over even (cos) or odd (sin) i with
 * alternating signs. */
Float
sincos_series(const Float& x, std::uint64_t prec, bool odd)
{
    const std::uint64_t work = prec + 16;
    CAMP_ASSERT_MSG(x.is_zero() || x.magnitude_exp() < 4,
                    "sin/cos argument out of the supported range");
    Float term = odd ? x.rounded_to(work)
                     : Float::from_natural(Natural(1), work);
    const Float x2 = (x * x).rounded_to(work);
    Float sum = Float::with_prec(work);
    std::uint64_t i = odd ? 1 : 0;
    bool negate = false;
    while (!term.is_zero() &&
           term.magnitude_exp() > -static_cast<std::int64_t>(work)) {
        sum = negate ? sum - term : sum + term;
        negate = !negate;
        // term *= x^2 / ((i+1)(i+2)).
        term = term * x2 /
               Float::from_natural(Natural((i + 1) * (i + 2)), work);
        i += 2;
    }
    return sum.rounded_to(prec);
}

} // namespace

Float
sin(const Float& x, std::uint64_t prec)
{
    return sincos_series(x, prec, /*odd=*/true);
}

Float
cos(const Float& x, std::uint64_t prec)
{
    return sincos_series(x, prec, /*odd=*/false);
}

Float
exp(const Float& x, std::uint64_t prec)
{
    CAMP_ASSERT_MSG(x.is_zero() || x.magnitude_exp() < 7,
                    "exp argument out of the supported range");
    const std::uint64_t work = prec + 32;
    // Halve the argument h times so the series converges quickly, then
    // square the result back: exp(x) = exp(x/2^h)^(2^h).
    const int halvings = 8;
    const Float small = x.rounded_to(work).ldexp(-halvings);
    Float term = Float::from_natural(Natural(1), work);
    Float sum = Float::with_prec(work);
    std::uint64_t i = 0;
    while (!term.is_zero() &&
           (term.magnitude_exp() >
            -static_cast<std::int64_t>(work))) {
        sum += term;
        ++i;
        term = term * small / Float::from_natural(Natural(i), work);
    }
    for (int h = 0; h < halvings; ++h)
        sum = sum * sum;
    return sum.rounded_to(prec);
}

} // namespace camp::mpf
