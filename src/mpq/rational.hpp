/**
 * @file
 * Rational: canonicalized fractions over Integer/Natural — the
 * GMP-MPQ-equivalent layer used by binary-splitting style algorithms
 * (Figure 1's "Library for rationals").
 */
#ifndef CAMP_MPQ_RATIONAL_HPP
#define CAMP_MPQ_RATIONAL_HPP

#include <string>
#include <utility>

#include "mpz/integer.hpp"

namespace camp::mpq {

using mpn::Natural;
using mpz::Integer;

/** Arbitrary-precision rational number, always in lowest terms. */
class Rational
{
  public:
    /** Zero. */
    Rational() : den_(1) {}

    Rational(Integer v) : num_(std::move(v)), den_(1) {} // NOLINT
    Rational(std::int64_t v) : num_(v), den_(1) {}       // NOLINT

    /** num / den; throws std::invalid_argument on zero denominator. */
    Rational(Integer num, Natural den);

    const Integer& num() const { return num_; }
    const Natural& den() const { return den_; }
    bool is_zero() const { return num_.is_zero(); }

    friend Rational operator-(const Rational& a)
    {
        Rational r;
        r.num_ = -a.num_;
        r.den_ = a.den_;
        return r;
    }
    friend Rational operator+(const Rational& a, const Rational& b);
    friend Rational operator-(const Rational& a, const Rational& b);
    friend Rational operator*(const Rational& a, const Rational& b);
    friend Rational operator/(const Rational& a, const Rational& b);

    friend bool
    operator==(const Rational& a, const Rational& b)
    {
        return a.num_ == b.num_ && a.den_ == b.den_;
    }
    friend std::strong_ordering operator<=>(const Rational& a,
                                            const Rational& b);

    /** Decimal expansion truncated to @p digits fractional digits. */
    std::string to_decimal(std::uint64_t digits) const;

    double to_double() const;

  private:
    void canonicalize();

    Integer num_;
    Natural den_; ///< > 0
};

} // namespace camp::mpq

#endif // CAMP_MPQ_RATIONAL_HPP
