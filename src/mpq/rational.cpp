#include "mpq/rational.hpp"

#include <stdexcept>

#include "mpn/extra.hpp"
#include "support/assert.hpp"

namespace camp::mpq {

Rational::Rational(Integer num, Natural den)
    : num_(std::move(num)), den_(std::move(den))
{
    if (den_.is_zero())
        throw std::invalid_argument("Rational: zero denominator");
    canonicalize();
}

void
Rational::canonicalize()
{
    if (num_.is_zero()) {
        den_ = Natural(1);
        return;
    }
    // Lehmer's algorithm: canonicalization gcds run on full-size
    // numerators/denominators where binary gcd's O(n^2) bit steps bite.
    const Natural g = mpn::gcd_lehmer(num_.abs(), den_);
    if (g != Natural(1)) {
        num_ = Integer(num_.abs() / g, num_.is_negative());
        den_ = den_ / g;
    }
}

Rational
operator+(const Rational& a, const Rational& b)
{
    return {a.num_ * Integer(b.den_) + b.num_ * Integer(a.den_),
            a.den_ * b.den_};
}

Rational
operator-(const Rational& a, const Rational& b)
{
    return a + (-b);
}

Rational
operator*(const Rational& a, const Rational& b)
{
    return {a.num_ * b.num_, a.den_ * b.den_};
}

Rational
operator/(const Rational& a, const Rational& b)
{
    if (b.is_zero())
        throw std::invalid_argument("Rational division by zero");
    const bool neg = a.num_.is_negative() != b.num_.is_negative();
    return {Integer(a.num_.abs() * b.den_, neg),
            a.den_ * b.num_.abs()};
}

std::strong_ordering
operator<=>(const Rational& a, const Rational& b)
{
    // a/c <=> b/d == a*d <=> b*c for positive c, d.
    return a.num_ * Integer(b.den_) <=> b.num_ * Integer(a.den_);
}

std::string
Rational::to_decimal(std::uint64_t digits) const
{
    const Natural scaled = num_.abs() * Natural::pow10(digits) / den_;
    std::string s = scaled.to_decimal();
    if (s.size() <= digits)
        s.insert(0, digits + 1 - s.size(), '0');
    s.insert(s.size() - digits, ".");
    if (num_.is_negative())
        s.insert(0, "-");
    return s;
}

double
Rational::to_double() const
{
    // Scale to ~64 extra bits of quotient before converting.
    const std::uint64_t shift = 64;
    const Natural q = (num_.abs() << shift) / den_;
    const double v = q.to_double() / 18446744073709551616.0;
    return num_.is_negative() ? -v : v;
}

} // namespace camp::mpq
