/**
 * @file
 * MPApca execution ledger: observes Natural-level operations through
 * the mpn op-hook and accumulates their *simulated* Cambricon-P cost
 * (cycles and energy) from the cost model. Only top-level operations
 * are charged — nested Natural calls inside an already-charged operator
 * (e.g. the shifts inside gcd) are covered by that operator's composed
 * cost formula.
 */
#ifndef CAMP_MPAPCA_LEDGER_HPP
#define CAMP_MPAPCA_LEDGER_HPP

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "mpapca/cost_model.hpp"
#include "mpn/ophook.hpp"

namespace camp::mpapca {

/** Per-kind simulated totals. */
struct LedgerEntry
{
    std::uint64_t count = 0;
    Cost cost;
};

/**
 * Observable fault-and-recovery accounting: what the injection engine
 * put in, what the self-checking runtime caught, and how each caught
 * fault was resolved. Invariant maintained by the runtime:
 * detected == retried + fallbacks (every detected mismatch triggers
 * exactly one recovery action).
 */
struct FaultStats
{
    std::uint64_t injected = 0;  ///< faults injected by the engine
    std::uint64_t checks = 0;    ///< base products cross-checked
    std::uint64_t detected = 0;  ///< cross-check mismatches observed
    std::uint64_t retried = 0;   ///< hardware retries issued
    std::uint64_t fallbacks = 0; ///< products served by the CPU path

    bool
    any() const
    {
        return injected | checks | detected | retried | fallbacks;
    }
};

/** Accumulates simulated hardware cost per operation kind. */
class Ledger : public mpn::OpHook
{
  public:
    explicit Ledger(const CostModel& model) : model_(model) {}

    void on_enter(mpn::OpKind kind, std::uint64_t bits_a,
                  std::uint64_t bits_b) override;
    void on_exit(mpn::OpKind kind) override;

    void reset();

    /** Total simulated cycles / seconds / energy. */
    double total_cycles() const;
    double total_seconds() const;
    double total_energy_j() const;

    const LedgerEntry& entry(mpn::OpKind kind) const;

    /** Fault-and-recovery counters (mutated by the runtime).
     * Single-writer view — concurrent writers must go through
     * fold_fault_stats() instead. */
    FaultStats& fault_stats() { return faults_; }
    const FaultStats& fault_stats() const { return faults_; }

    /**
     * Fold a delta of fault/recovery counters into this ledger,
     * thread-safely: any number of runtimes / serve workers may fold
     * concurrently into one shared ledger without losing counts (the
     * serving layer folds once per completed wave). Mixing
     * fold_fault_stats() with direct fault_stats() writes from other
     * threads is NOT synchronized — concurrent producers must all use
     * the fold path.
     */
    void fold_fault_stats(const FaultStats& delta);

    /** Locked copy of the fault counters, safe to call while other
     * threads fold. */
    FaultStats fault_stats_snapshot() const;

    /** Record one human-readable fault diagnostic; retention is capped
     * at kMaxFaultDiagnostics (the counters always stay exact). */
    void record_fault_diagnostic(std::string diagnostic);

    static constexpr std::size_t kMaxFaultDiagnostics = 64;

    const std::vector<std::string>&
    fault_diagnostics() const
    {
        return diagnostics_;
    }

    /** Render a per-kind cost table (plus fault counters when any). */
    std::string table(const std::string& label) const;

  private:
    const CostModel& model_;
    std::array<LedgerEntry, 9> entries_{};
    FaultStats faults_;
    std::vector<std::string> diagnostics_;
    int depth_ = 0;
    /** Serializes fold_fault_stats / fault_stats_snapshot /
     * record_fault_diagnostic against each other. */
    mutable std::mutex fault_mutex_;
};

/** RAII: attach a ledger to the op-hook list. */
class LedgerSession
{
  public:
    explicit LedgerSession(Ledger& ledger) : ledger_(ledger)
    {
        ledger_.reset();
        mpn::add_op_hook(&ledger_);
    }
    ~LedgerSession() { mpn::remove_op_hook(&ledger_); }
    LedgerSession(const LedgerSession&) = delete;
    LedgerSession& operator=(const LedgerSession&) = delete;

  private:
    Ledger& ledger_;
};

} // namespace camp::mpapca

#endif // CAMP_MPAPCA_LEDGER_HPP
