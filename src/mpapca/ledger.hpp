/**
 * @file
 * MPApca execution ledger: observes Natural-level operations through
 * the mpn op-hook and accumulates their *simulated* Cambricon-P cost
 * (cycles and energy) from the cost model. Only top-level operations
 * are charged — nested Natural calls inside an already-charged operator
 * (e.g. the shifts inside gcd) are covered by that operator's composed
 * cost formula.
 */
#ifndef CAMP_MPAPCA_LEDGER_HPP
#define CAMP_MPAPCA_LEDGER_HPP

#include <array>
#include <cstdint>
#include <string>

#include "mpapca/cost_model.hpp"
#include "mpn/ophook.hpp"

namespace camp::mpapca {

/** Per-kind simulated totals. */
struct LedgerEntry
{
    std::uint64_t count = 0;
    Cost cost;
};

/** Accumulates simulated hardware cost per operation kind. */
class Ledger : public mpn::OpHook
{
  public:
    explicit Ledger(const CostModel& model) : model_(model) {}

    void on_enter(mpn::OpKind kind, std::uint64_t bits_a,
                  std::uint64_t bits_b) override;
    void on_exit(mpn::OpKind kind) override;

    void reset();

    /** Total simulated cycles / seconds / energy. */
    double total_cycles() const;
    double total_seconds() const;
    double total_energy_j() const;

    const LedgerEntry& entry(mpn::OpKind kind) const;

    /** Render a per-kind cost table. */
    std::string table(const std::string& label) const;

  private:
    const CostModel& model_;
    std::array<LedgerEntry, 9> entries_{};
    int depth_ = 0;
};

/** RAII: attach a ledger to the op-hook list. */
class LedgerSession
{
  public:
    explicit LedgerSession(Ledger& ledger) : ledger_(ledger)
    {
        ledger_.reset();
        mpn::add_op_hook(&ledger_);
    }
    ~LedgerSession() { mpn::remove_op_hook(&ledger_); }
    LedgerSession(const LedgerSession&) = delete;
    LedgerSession& operator=(const LedgerSession&) = delete;

  private:
    Ledger& ledger_;
};

} // namespace camp::mpapca

#endif // CAMP_MPAPCA_LEDGER_HPP
