#include "mpapca/cost_model.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace camp::mpapca {

CostModel::CostModel(const sim::SimConfig& config,
                     const MpapcaTuning& tuning)
    : config_(config), tuning_(tuning), analytic_(config_)
{
    energy_ = sim::cambricon_p_energy(config_);
}

Cost
CostModel::stats_cost(const sim::CoreStats& stats) const
{
    return {static_cast<double>(stats.cycles),
            energy_.energy(stats, config_)};
}

const char*
CostModel::mul_algorithm(std::uint64_t bits) const
{
    if (bits <= config_.monolithic_cap_bits)
        return "monolithic";
    mul_balanced(bits); // fills the selection memo
    return algo_memo_[bits];
}

Cost
CostModel::mul_monolithic(std::uint64_t bits_a,
                          std::uint64_t bits_b) const
{
    return stats_cost(analytic_.multiply_stats(bits_a, bits_b));
}

Cost
CostModel::add(std::uint64_t bits) const
{
    return stats_cost(analytic_.linear_stats(bits));
}

Cost
CostModel::shift(std::uint64_t bits) const
{
    return stats_cost(analytic_.shift_stats(bits));
}

Cost
CostModel::mul_balanced(std::uint64_t bits) const
{
    if (bits == 0)
        return {};
    if (bits <= config_.monolithic_cap_bits)
        return mul_monolithic(bits, bits);
    const auto memo = mul_memo_.find(bits);
    if (memo != mul_memo_.end())
        return memo->second;

    // Runtime algorithm selection (paper SV-C: "MPApca selects at
    // runtime which fast multiply algorithm is used"): evaluate every
    // eligible decomposition and keep the cheapest. The tuning gates
    // only bound *eligibility* (higher-order Toom needs headroom above
    // the base case; SSA needs enough pieces to amortize transforms).
    Cost best;
    const char* best_name = "toom2";
    bool have = false;
    auto consider = [&](const Cost& cost, const char* name) {
        if (!have || cost.cycles < best.cycles) {
            best = cost;
            best_name = name;
            have = true;
        }
    };

    static const struct { unsigned k; const char* name; } kToom[] = {
        {2, "toom2"}, {3, "toom3"}, {4, "toom4"}, {6, "toom6"}};
    for (const auto& [k, name] : kToom) {
        // Toom-k: 2k-1 pointwise products of ~bits/k plus O(k) linear
        // evaluation/interpolation passes over the operands.
        const std::uint64_t piece = (bits + k - 1) / k + 64;
        Cost cost = static_cast<double>(2 * k - 1) * mul_balanced(piece);
        cost += static_cast<double>(4 * k) * add(piece);
        cost += static_cast<double>(6 * k) * add(2 * piece);
        consider(cost, name);
    }
    if (bits >= tuning_.ssa_min) {
        // SSA: L = 2^g pieces, ring width K ~ 2*bits/L; 3 transforms of
        // L log L butterflies (each an add + shift of K bits) plus L
        // recursive pointwise products.
        const unsigned g =
            std::max(4, ceil_log2(bits / config_.monolithic_cap_bits) +
                            2);
        const std::uint64_t L = std::uint64_t{1} << g;
        const std::uint64_t K =
            std::max<std::uint64_t>(2 * bits / L + g + 1, 64);
        const double butterflies = 3.0 * static_cast<double>(L) * g;
        Cost cost = butterflies * (add(K) + shift(K));
        cost += static_cast<double>(L) * mul_balanced(K);
        cost += 2.0 * add(2 * bits); // decompose + recompose passes
        consider(cost, "ssa");
    }
    mul_memo_.emplace(bits, best);
    algo_memo_[bits] = best_name;
    return best;
}

Cost
CostModel::mul(std::uint64_t bits_a, std::uint64_t bits_b) const
{
    if (bits_a == 0 || bits_b == 0)
        return {};
    std::uint64_t hi = std::max(bits_a, bits_b);
    std::uint64_t lo = std::min(bits_a, bits_b);
    if (hi <= config_.monolithic_cap_bits)
        return mul_monolithic(bits_a, bits_b);
    if (hi >= 2 * lo) {
        // Block decomposition: ceil(hi/lo) balanced products.
        const double blocks =
            static_cast<double>((hi + lo - 1) / lo);
        return blocks * mul(lo, lo) + 2.0 * add(hi + lo);
    }
    return mul_balanced(hi);
}

Cost
CostModel::div(std::uint64_t bits_a, std::uint64_t bits_b) const
{
    if (bits_a == 0 || bits_b == 0 || bits_a < bits_b)
        return add(bits_b); // comparison/copy only
    const std::uint64_t qbits = bits_a - bits_b + 1;
    const std::uint64_t n = std::max(bits_b, qbits);
    const auto memo = div_memo_.find(n);
    if (memo != div_memo_.end())
        return memo->second;
    Cost cost;
    if (n <= config_.monolithic_cap_bits) {
        // Hardware-assisted schoolbook: quotient-limb passes of
        // submul, each a monolithic multiply-accumulate row.
        cost = mul_monolithic(std::min(bits_b,
                                       config_.monolithic_cap_bits),
                              std::min(qbits,
                                       config_.monolithic_cap_bits)) +
               2.0 * add(bits_a);
    } else {
        // Burnikel–Ziegler recursion: D(n) = 2 D(n/2) + 2 M(n/2) + O(n).
        const Cost half_div =
            div(n / 2 + n / 4, n / 2); // 3h-by-2h step shape
        const Cost half_mul = mul(n / 2, n / 2);
        cost = 2.0 * half_div + 2.0 * half_mul + 3.0 * add(n);
    }
    div_memo_[n] = cost;
    return cost;
}

Cost
CostModel::sqrt(std::uint64_t bits) const
{
    if (bits <= 128)
        return add(128);
    const auto memo = sqrt_memo_.find(bits);
    if (memo != sqrt_memo_.end())
        return memo->second;
    sqrt_memo_.emplace(bits, Cost{});
    // Zimmermann: S(n) = S(n/2) + D(n/2) + M(n/4)^2-ish + O(n).
    const Cost cost = sqrt(bits / 2) + div(bits / 2 + bits / 4,
                                           bits / 2) +
                      mul(bits / 2, bits / 2) + 2.0 * add(bits);
    sqrt_memo_[bits] = cost;
    return cost;
}

Cost
CostModel::gcd(std::uint64_t bits) const
{
    if (bits == 0)
        return {};
    // Binary GCD: ~1.4 * bits subtract/shift iterations, each O(bits)
    // linear work on shrinking operands (halved on average).
    const double iterations = 1.4 * static_cast<double>(bits);
    return iterations * 0.5 * (add(bits / 2 + 1) + shift(bits / 2 + 1));
}

} // namespace camp::mpapca
