#include "mpapca/runtime.hpp"

#include <utility>

#include "exec/registry.hpp"
#include "exec/scheduler.hpp"
#include "profile/profiler.hpp"
#include "sim/comparators.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/opcache.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace camp::mpapca {

using mpn::Natural;

namespace {

/** Registered-once runtime counters: base-product issue rate plus the
 * cost-model-vs-measured delta (both sides in nanoseconds, summed
 * over base products, so `model_ns / measured_ns` is the aggregate
 * model calibration ratio). Recovery counters live with the checked
 * device (exec.checked.*). */
struct RuntimeMetrics
{
    support::metrics::Counter* base_products;
    support::metrics::Counter* model_ns;
    support::metrics::Counter* measured_ns;
};

RuntimeMetrics&
runtime_metrics()
{
    static RuntimeMetrics* m = [] {
        namespace metrics = support::metrics;
        auto* rm = new RuntimeMetrics;
        rm->base_products =
            &metrics::counter("mpapca.base_products");
        rm->model_ns = &metrics::counter("mpapca.model_ns");
        rm->measured_ns = &metrics::counter("mpapca.measured_ns");
        return rm;
    }();
    return *m;
}

} // namespace

const char*
backend_device_name(Backend backend)
{
    return backend == Backend::Cpu ? "cpu" : "sim";
}

Runtime::Runtime(const std::string& device_name,
                 const sim::SimConfig& config,
                 const SelfCheckPolicy& self_check)
    : config_(sim::validated(config)), model_(config_), ledger_(model_)
{
    // Armed fault injection without self-checking would silently
    // return corrupted products; default to full-coverage checking.
    // A ShardedScheduler self-checks per shard (its constructor arms
    // the same policy), so the outer wrapper stays transparent there —
    // double-checking every product would only double the golden cost.
    SelfCheckPolicy policy = self_check;
    auto inner = exec::make_device(device_name, config_);
    scheduler_ = dynamic_cast<exec::ShardedScheduler*>(inner.get());
    if (config_.faults.enabled() && !policy.enabled &&
        scheduler_ == nullptr) {
        policy.enabled = true;
        policy.sample_rate = 1.0;
    }
    device_ = std::make_unique<exec::CheckedDevice>(std::move(inner),
                                                    policy);
    device_->set_diagnostic_sink([this](const std::string& diag) {
        ledger_.record_fault_diagnostic(diag);
    });
    if (scheduler_ != nullptr)
        scheduler_->set_diagnostic_sink(
            [this](const std::string& diag) {
                ledger_.record_fault_diagnostic(diag);
            });

    cap_bits_ = device_->base_cap_bits();
    // Decomposition gates follow the device's tuning: by default the
    // seed policy (Toom-3 above six base capabilities), but a device
    // whose toom3 threshold was retuned — CAMP_<DEV>_MUL_THRESH_TOOM3
    // or set_tuning — moves the gate with it.
    toom3_engage_bits_ = 6 * cap_bits_;
    if (cap_bits_ != 0) {
        const mpn::MulTuning defaults =
            exec::retuned_for_cap(cap_bits_);
        if (device_->tuning().toom3 != defaults.toom3)
            toom3_engage_bits_ =
                static_cast<std::uint64_t>(device_->tuning().toom3) *
                mpn::kLimbBits;
    }
}

Runtime::Runtime(Backend backend, const sim::SimConfig& config,
                 const SelfCheckPolicy& self_check)
    : Runtime(backend_device_name(backend), config, self_check)
{
}

Backend
Runtime::backend() const
{
    return device_->kind() == exec::DeviceKind::Host
               ? Backend::Cpu
               : Backend::CambriconP;
}

AppReport
Runtime::run(const std::string& label, const std::function<void()>& app)
{
    AppReport report;
    report.backend = backend();
    report.device = device_->name();
    profile::ProfileSession profile_session;
    auto& profiler = profile::Profiler::instance();

    const double cpu_power = sim::skylake_cpu().power_w;
    const support::OpCacheStats opcache_before =
        support::OpCache::global().stats();

    if (device_->kind() == exec::DeviceKind::Host) {
        app();
        report.kernel_seconds =
            profiler.seconds(profile::Category::KernelMul) +
            profiler.seconds(profile::Category::KernelAdd) +
            profiler.seconds(profile::Category::KernelShift) +
            profiler.seconds(profile::Category::LowLevelOther);
        report.host_seconds =
            profiler.total_seconds() - report.kernel_seconds;
        report.seconds = profiler.total_seconds();
        report.energy_j = report.seconds * cpu_power;
    } else {
        LedgerSession ledger_session(ledger_);
        app();
        // Kernel + low-level operators execute on the accelerator
        // (their simulated time replaces the measured CPU time); the
        // host keeps the high-level and auxiliary shares (paper §V-C).
        report.kernel_seconds = ledger_.total_seconds();
        report.host_seconds =
            profiler.seconds(profile::Category::HighLevel) +
            profiler.seconds(profile::Category::Auxiliary);
        report.seconds = report.kernel_seconds + report.host_seconds;
        report.energy_j =
            ledger_.total_energy_j() + report.host_seconds * cpu_power;
        report.faults = ledger_.fault_stats();
    }
    const support::OpCacheStats opcache_after =
        support::OpCache::global().stats();
    report.opcache_hits = opcache_after.hits - opcache_before.hits;
    report.opcache_misses =
        opcache_after.misses - opcache_before.misses;
    report.breakdown = profiler.breakdown_table(label);
    return report;
}

void
Runtime::fold_check_stats()
{
    const exec::CheckStats& now = device_->stats();
    FaultStats& stats = ledger_.fault_stats();
    stats.checks += now.checks - folded_.checks;
    stats.detected += now.detected - folded_.detected;
    stats.retried += now.retried - folded_.retried;
    stats.fallbacks += now.fallbacks - folded_.fallbacks;
    folded_ = now;
    if (scheduler_ != nullptr) {
        // The scheduler's recovery path runs through its shards' own
        // CheckedDevices (and the host CPU as last resort); fold those
        // cumulative counters as deltas too, so FaultStats stays the
        // authoritative per-run diagnostics surface.
        const exec::CheckStats shards = scheduler_->check_stats();
        stats.checks += shards.checks - folded_shards_.checks;
        stats.detected += shards.detected - folded_shards_.detected;
        stats.retried += shards.retried - folded_shards_.retried;
        stats.fallbacks +=
            shards.fallbacks - folded_shards_.fallbacks;
        folded_shards_ = shards;
        const std::uint64_t cpu = scheduler_->stats().cpu_fallbacks;
        stats.fallbacks += cpu - folded_cpu_fallbacks_;
        folded_cpu_fallbacks_ = cpu;
    }
}

Natural
Runtime::base_product(const Natural& a, const Natural& b)
{
    namespace trace = support::trace;
    RuntimeMetrics& rm = runtime_metrics();
    ++base_products_;
    rm.base_products->add();

    // Model-vs-measured calibration: the cost model's simulated-cycle
    // prediction for this shape next to the wall time the device
    // actually took (memoized model, so the lookup is cheap relative
    // to the multiply it annotates).
    const double model_cycles = model_.mul(a.bits(), b.bits()).cycles;
    trace::Span span("mpapca.base_product", "mpapca");
    span.arg("bits_a", static_cast<double>(a.bits()));
    span.arg("model_cycles", model_cycles);
    const std::uint64_t t0 = trace::now_ns();
    exec::MulOutcome outcome = device_->mul(a, b);
    rm.measured_ns->add(trace::now_ns() - t0);
    rm.model_ns->add(static_cast<std::uint64_t>(
        model_.seconds(model_cycles) * 1e9));

    ledger_.fault_stats().injected += outcome.injected;
    fold_check_stats();
    return std::move(outcome.product);
}

sim::BatchResult
Runtime::multiply_batch(
    const std::vector<std::pair<Natural, Natural>>& pairs)
{
    const unsigned parallelism =
        pairs.size() >= 2
            ? support::ThreadPool::global().executors()
            : 1;
    sim::BatchResult result =
        device_->mul_batch(pairs, parallelism);
    base_products_ += result.products.size();
    // Batch products validate per product inside the device's engine
    // (mismatches are counted, not fatal, when injection is armed —
    // see sim::BatchEngine); fold the outcome into the ledger.
    ledger_.fault_stats().injected += result.injected;
    ledger_.fault_stats().detected += result.faulty;
    if (config_.faults.enabled())
        ledger_.fault_stats().checks += result.products.size();
    // Scheduler-backed batches may have recovered faulty products on
    // peer shards; pick up those retry/fallback deltas.
    fold_check_stats();
    return result;
}

Natural
Runtime::mul_functional(const Natural& a, const Natural& b)
{
    support::trace::Span span("mpapca.mul_functional", "mpapca");
    span.arg("bits_a", static_cast<double>(a.bits()));
    span.arg("bits_b", static_cast<double>(b.bits()));
    if (a.is_zero() || b.is_zero())
        return Natural();
    const std::uint64_t cap = cap_bits_;
    // An unlimited device (the host) takes everything monolithically.
    if (cap == 0 || (a.bits() <= cap && b.bits() <= cap))
        return base_product(a, b);
    // Order so a is the wider operand.
    if (a.bits() < b.bits())
        return mul_functional(b, a);
    if (b.bits() <= cap / 2 && a.bits() > cap) {
        // Block decomposition: multiply cap-sized chunks of a by b.
        Natural result;
        const std::uint64_t chunk_bits = cap;
        const Natural mask = (Natural(1) << chunk_bits) - Natural(1);
        Natural rest = a;
        std::uint64_t offset = 0;
        while (!rest.is_zero()) {
            const Natural chunk = rest & mask;
            result += mul_functional(chunk, b) << offset;
            rest >>= chunk_bits;
            offset += chunk_bits;
        }
        return result;
    }
    if (a.bits() > toom3_engage_bits_ && 3 * b.bits() > 2 * a.bits())
        return mul_toom3_functional(a, b);
    // Karatsuba split at half the wider operand.
    const std::uint64_t half = a.bits() / 2;
    const Natural mask = (Natural(1) << half) - Natural(1);
    const Natural a0 = a & mask, a1 = a >> half;
    const Natural b0 = b & mask, b1 = b >> half;
    const Natural z0 = mul_functional(a0, b0);
    const Natural z2 = mul_functional(a1, b1);
    const Natural z1 =
        mul_functional(a0 + a1, b0 + b1) - z0 - z2;
    return (z2 << (2 * half)) + (z1 << half) + z0;
}

Natural
Runtime::mul_toom3_functional(const Natural& a, const Natural& b)
{
    // Toom-3 over the nonnegative points {0, 1, 2, 3, inf} (the same
    // construction as mpn::mul_toom, lifted to Natural so that every
    // pointwise product routes back through the executing device).
    const std::uint64_t part = (a.bits() + 2) / 3;
    const Natural mask = (Natural(1) << part) - Natural(1);
    const Natural a0 = a & mask, a1 = (a >> part) & mask,
                  a2 = a >> (2 * part);
    const Natural b0 = b & mask, b1 = (b >> part) & mask,
                  b2 = b >> (2 * part);
    auto eval = [](const Natural& c0, const Natural& c1,
                   const Natural& c2, std::uint64_t x) {
        return (c2 * Natural(x * x)) + (c1 * Natural(x)) + c0;
    };
    const Natural v0 = mul_functional(a0, b0);
    const Natural v1 = mul_functional(eval(a0, a1, a2, 1),
                                      eval(b0, b1, b2, 1));
    const Natural v2 = mul_functional(eval(a0, a1, a2, 2),
                                      eval(b0, b1, b2, 2));
    const Natural v3 = mul_functional(eval(a0, a1, a2, 3),
                                      eval(b0, b1, b2, 3));
    const Natural vinf = mul_functional(a2, b2);

    // Interpolation (all intermediates provably nonnegative):
    // t_i = v_i - c0 - i^4 c4; A = t2 - 2 t1; B = t3 - 3 t1;
    // c3 = (B - 3A)/6; c2 = (A - 6 c3)/2; c1 = t1 - c2 - c3.
    const Natural t1 = v1 - v0 - vinf;
    const Natural t2 = v2 - v0 - (vinf << 4);
    const Natural t3 = v3 - v0 - Natural(81) * vinf;
    const Natural A = t2 - (t1 << 1);
    const Natural B = t3 - Natural(3) * t1;
    auto divexact_small = [](const Natural& n, std::uint64_t d) {
        auto [q, r] = Natural::divrem(n, Natural(d));
        CAMP_ASSERT(r.is_zero());
        return q;
    };
    const Natural c3 = divexact_small(B - Natural(3) * A, 6);
    const Natural c2 = divexact_small(A - Natural(6) * c3, 2);
    const Natural c1 = t1 - c2 - c3;

    return v0 + (c1 << part) + (c2 << (2 * part)) +
           (c3 << (3 * part)) + (vinf << (4 * part));
}

} // namespace camp::mpapca
