/**
 * @file
 * The MPApca runtime library (paper §V-C and Figure 1): the layer that
 * replaces the CPU for kernel operators. It offers
 *  - backend-dispatched application runs: the same application code
 *    executes on the Cpu backend (measured wall time) or the CambriconP
 *    backend (kernel operators charged to the simulated accelerator,
 *    host categories measured) — this is the Fig. 13 methodology;
 *  - a functional multiplication path that really decomposes oversized
 *    operands in software and drives the simulated Core for every base
 *    product, validating the decomposition end to end;
 *  - a self-checking mode that cross-checks hardware base products
 *    against the mpn golden model and degrades gracefully — bounded
 *    hardware retries, then the CPU path — so mul_functional returns
 *    the exact product even with datapath fault injection armed.
 */
#ifndef CAMP_MPAPCA_RUNTIME_HPP
#define CAMP_MPAPCA_RUNTIME_HPP

#include <functional>
#include <string>

#include "mpapca/cost_model.hpp"
#include "mpapca/ledger.hpp"
#include "mpn/natural.hpp"
#include "sim/batch.hpp"
#include "sim/core.hpp"
#include "support/rng.hpp"

namespace camp::mpapca {

/** Which machine executes the kernel operators. */
enum class Backend
{
    Cpu,
    CambriconP,
};

/** Outcome of one application run. */
struct AppReport
{
    Backend backend = Backend::Cpu;
    double seconds = 0;    ///< end-to-end app time on this backend
    double energy_j = 0;   ///< energy model for this backend
    double host_seconds = 0;    ///< non-offloaded host share
    double kernel_seconds = 0;  ///< kernel operators (measured or sim)
    std::string breakdown;      ///< rendered profiler table
    FaultStats faults;          ///< fault/recovery counters for the run
};

/**
 * Golden-model self-checking policy for hardware base products.
 * Auto-enabled (full sampling) whenever the SimConfig arms fault
 * injection; sample_rate < 1 trades coverage for check overhead
 * (see bench/ablation_fault.cpp for the measured trade-off).
 */
struct SelfCheckPolicy
{
    bool enabled = false;
    double sample_rate = 1.0;  ///< fraction of base products checked
    unsigned retry_budget = 2; ///< hardware retries before CPU fallback
    std::uint64_t seed = 0x5e1fc4ecull; ///< sampling RNG seed
};

/** MPApca runtime. */
class Runtime
{
  public:
    /**
     * Throws camp::ConfigError on a non-buildable @p config. When
     * @p config arms fault injection and @p self_check leaves checking
     * disabled, full-sampling self-checking is switched on so
     * mul_functional stays exact under injected faults.
     */
    explicit Runtime(Backend backend,
                     const sim::SimConfig& config = sim::default_config(),
                     const SelfCheckPolicy& self_check = SelfCheckPolicy{});

    Backend backend() const { return backend_; }
    const CostModel& cost_model() const { return model_; }
    const SelfCheckPolicy& self_check() const { return check_; }

    /** Fault/recovery counters accumulated by the self-checking path
     * (reset at the start of every run()). */
    const FaultStats& fault_stats() const
    {
        return ledger_.fault_stats();
    }

    const Ledger& ledger() const { return ledger_; }

    /**
     * Run an application closure under this backend and report time,
     * energy, and the operator breakdown.
     *
     * CPU single-core busy power for the energy comparison comes from
     * Table III's SkyLake figure (see sim::skylake_cpu()).
     */
    AppReport run(const std::string& label,
                  const std::function<void()>& app);

    /**
     * Functional multiplication through the simulated hardware:
     * operands beyond the monolithic capability are decomposed in
     * software — block decomposition for skinny shapes, Toom-3 for
     * large balanced operands, Karatsuba (Toom-2) otherwise — and
     * every base product executes on sim::Core. Returns the exact
     * product.
     */
    mpn::Natural mul_functional(const mpn::Natural& a,
                                const mpn::Natural& b);

    /** Hardware base products issued by mul_functional so far. */
    std::uint64_t base_products() const { return base_products_; }

    /**
     * Multiply many independent pairs through the simulated batch
     * fabric (sim::BatchEngine). The runtime picks the host-side
     * parallelism: batches of at least two products fork across the
     * global thread pool, single products and CAMP_THREADS=1 runs
     * stay serial; products are bit-identical either way. Injected
     * faults and validation mismatches are folded into the ledger's
     * FaultStats (injected / detected), keeping the PR-1 diagnostics
     * surface authoritative for batch work too.
     */
    sim::BatchResult
    multiply_batch(const std::vector<std::pair<mpn::Natural,
                                               mpn::Natural>>& pairs);

  private:
    mpn::Natural mul_toom3_functional(const mpn::Natural& a,
                                      const mpn::Natural& b);

    /** One hardware base product, guarded by the self-check policy:
     * cross-check a sample against the mpn golden model; on mismatch
     * record a diagnostic, retry within the budget, then fall back to
     * the CPU path so the result is always exact. */
    mpn::Natural base_product(const mpn::Natural& a,
                              const mpn::Natural& b);

    /** Fold newly injected engine faults into the ledger counters. */
    void sync_injected();

    Backend backend_;
    sim::SimConfig config_;
    CostModel model_;
    Ledger ledger_;
    sim::Core core_;
    SelfCheckPolicy check_;
    Rng check_rng_;
    std::uint64_t base_products_ = 0;
    std::uint64_t injected_seen_ = 0;
};

} // namespace camp::mpapca

#endif // CAMP_MPAPCA_RUNTIME_HPP
