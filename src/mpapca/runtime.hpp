/**
 * @file
 * The MPApca runtime library (paper §V-C and Figure 1): the layer that
 * replaces the CPU for kernel operators. It offers
 *  - device-dispatched application runs: the same application code
 *    executes on any registered exec::Device — the host backend
 *    (measured wall time) or an accelerator/model backend (kernel
 *    operators charged to the simulated accelerator, host categories
 *    measured) — this is the Fig. 13 methodology;
 *  - a functional multiplication path that really decomposes operands
 *    beyond the device's base capability in software and drives the
 *    device for every base product, validating the decomposition end
 *    to end;
 *  - golden-model self-checking by composition: every runtime device
 *    is wrapped in an exec::CheckedDevice, which cross-checks hardware
 *    base products against the mpn golden model and degrades
 *    gracefully — bounded hardware retries, then the CPU path — so
 *    mul_functional returns the exact product even with datapath fault
 *    injection armed.
 *
 * Backends are string-keyed through exec::DeviceRegistry ("cpu",
 * "sim", "analytic", plus anything registered at runtime) with the
 * CAMP_BACKEND environment default; the Backend enum remains as a thin
 * compatibility alias over the two canonical choices.
 */
#ifndef CAMP_MPAPCA_RUNTIME_HPP
#define CAMP_MPAPCA_RUNTIME_HPP

#include <functional>
#include <memory>
#include <string>

#include "exec/checked.hpp"
#include "exec/device.hpp"
#include "mpapca/cost_model.hpp"
#include "mpapca/ledger.hpp"
#include "mpn/natural.hpp"
#include "sim/batch.hpp"

namespace camp::exec {
class ShardedScheduler;
} // namespace camp::exec

namespace camp::mpapca {

/** Which machine executes the kernel operators (compatibility alias
 * over the device registry: Cpu = "cpu", CambriconP = "sim"). */
enum class Backend
{
    Cpu,
    CambriconP,
};

/** Registry name of a compatibility backend. */
const char* backend_device_name(Backend backend);

/** Outcome of one application run. */
struct AppReport
{
    Backend backend = Backend::Cpu;
    std::string device;    ///< registry name of the executing device
    double seconds = 0;    ///< end-to-end app time on this backend
    double energy_j = 0;   ///< energy model for this backend
    double host_seconds = 0;    ///< non-offloaded host share
    double kernel_seconds = 0;  ///< kernel operators (measured or sim)
    std::string breakdown;      ///< rendered profiler table
    FaultStats faults;          ///< fault/recovery counters for the run
    /** Global operand-cache (support::OpCache) activity during this
     * run, as deltas: reciprocal / Montgomery-constant reuse inside
     * the app's kernel operators. Zero when CAMP_OPCACHE=0. */
    std::uint64_t opcache_hits = 0;
    std::uint64_t opcache_misses = 0;
};

/**
 * Golden-model self-checking policy for hardware base products
 * (exec::CheckPolicy). Auto-enabled (full sampling) whenever the
 * SimConfig arms fault injection; sample_rate < 1 trades coverage for
 * check overhead (see bench/ablation_fault.cpp for the measured
 * trade-off).
 */
using SelfCheckPolicy = exec::CheckPolicy;

/** MPApca runtime. */
class Runtime
{
  public:
    /**
     * Run on a registry backend. Throws camp::ConfigError on a
     * non-buildable @p config and camp::InvalidArgument on an unknown
     * @p device_name. When @p config arms fault injection and
     * @p self_check leaves checking disabled, full-sampling
     * self-checking is switched on so mul_functional stays exact under
     * injected faults. The default backend honours CAMP_BACKEND
     * (falling back to "sim", the paper's machine).
     */
    explicit Runtime(const std::string& device_name,
                     const sim::SimConfig& config = sim::default_config(),
                     const SelfCheckPolicy& self_check = SelfCheckPolicy{});

    /** Compatibility entry point: Backend::Cpu = "cpu",
     * Backend::CambriconP = "sim". */
    explicit Runtime(Backend backend,
                     const sim::SimConfig& config = sim::default_config(),
                     const SelfCheckPolicy& self_check = SelfCheckPolicy{});

    /** Compatibility view of the executing device's kind. */
    Backend backend() const;

    /** The executing device (self-checking wrapper around the registry
     * backend; inner() reaches the wrapped device). */
    exec::CheckedDevice& device() { return *device_; }
    const exec::CheckedDevice& device() const { return *device_; }

    /** Non-null when the executing device is a ShardedScheduler (the
     * "sharded" backend). The scheduler self-checks per shard, so the
     * outer wrapper stays transparent and this runtime folds the
     * scheduler's aggregate recovery counters instead. */
    exec::ShardedScheduler* scheduler() { return scheduler_; }
    const exec::ShardedScheduler* scheduler() const
    {
        return scheduler_;
    }

    const CostModel& cost_model() const { return model_; }
    const SelfCheckPolicy& self_check() const
    {
        return device_->policy();
    }

    /** Fault/recovery counters accumulated by the self-checking path
     * (reset at the start of every run()). */
    const FaultStats& fault_stats() const
    {
        return ledger_.fault_stats();
    }

    const Ledger& ledger() const { return ledger_; }

    /**
     * Run an application closure under this backend and report time,
     * energy, and the operator breakdown.
     *
     * CPU single-core busy power for the energy comparison comes from
     * Table III's SkyLake figure (see sim::skylake_cpu()).
     */
    AppReport run(const std::string& label,
                  const std::function<void()>& app);

    /**
     * Functional multiplication through the executing device: operands
     * beyond the device's base capability are decomposed in software —
     * block decomposition for skinny shapes, Toom-3 for large balanced
     * operands, Karatsuba (Toom-2) otherwise — and every base product
     * executes on the device. A device with unlimited capability (the
     * host) takes every product monolithically. Returns the exact
     * product.
     */
    mpn::Natural mul_functional(const mpn::Natural& a,
                                const mpn::Natural& b);

    /** Device base products issued by mul_functional so far. */
    std::uint64_t base_products() const { return base_products_; }

    /**
     * Multiply many independent pairs through the device's batch path
     * (sim::BatchEngine on the simulated backend). The runtime picks
     * the host-side parallelism: batches of at least two products fork
     * across the global thread pool, single products and CAMP_THREADS=1
     * runs stay serial; products are bit-identical either way. Injected
     * faults and validation mismatches are folded into the ledger's
     * FaultStats (injected / detected), keeping the PR-1 diagnostics
     * surface authoritative for batch work too.
     */
    sim::BatchResult
    multiply_batch(const std::vector<std::pair<mpn::Natural,
                                               mpn::Natural>>& pairs);

  private:
    mpn::Natural mul_toom3_functional(const mpn::Natural& a,
                                      const mpn::Natural& b);

    /** One device base product through the self-checking wrapper, with
     * model-vs-measured calibration metrics. */
    mpn::Natural base_product(const mpn::Natural& a,
                              const mpn::Natural& b);

    /** Fold the checked device's cumulative recovery counters into the
     * ledger as deltas (the ledger resets per run(), the device does
     * not). */
    void fold_check_stats();

    sim::SimConfig config_;
    CostModel model_;
    Ledger ledger_;
    std::unique_ptr<exec::CheckedDevice> device_;
    exec::ShardedScheduler* scheduler_ = nullptr; ///< borrowed view
    exec::CheckStats folded_; ///< device counters already in the ledger
    exec::CheckStats folded_shards_; ///< scheduler shard counters folded
    std::uint64_t folded_cpu_fallbacks_ = 0;
    std::uint64_t base_products_ = 0;
    std::uint64_t cap_bits_ = 0;          ///< 0 = unlimited
    std::uint64_t toom3_engage_bits_ = 0; ///< Toom-3 decomposition gate
};

} // namespace camp::mpapca

#endif // CAMP_MPAPCA_RUNTIME_HPP
