/**
 * @file
 * MPApca cost model: cycle and energy cost of multiple-precision
 * operators executed on Cambricon-P (paper §V-C). Operations that fit
 * the monolithic capability map straight onto the hardware (via the
 * analytic model, validated against the functional Core); larger
 * operations follow MPApca's software decomposition — Toom-{2,3,4,6}
 * and SSA with thresholds retuned for the 35904-bit base case — and
 * their cost is the recursive sum of hardware sub-operations.
 */
#ifndef CAMP_MPAPCA_COST_MODEL_HPP
#define CAMP_MPAPCA_COST_MODEL_HPP

#include <cstdint>
#include <map>
#include <string>

#include "sim/analytic_model.hpp"
#include "sim/tech_model.hpp"

namespace camp::mpapca {

/** Simulated cost of one operation. */
struct Cost
{
    double cycles = 0;
    double energy_j = 0;

    Cost&
    operator+=(const Cost& other)
    {
        cycles += other.cycles;
        energy_j += other.energy_j;
        return *this;
    }
    friend Cost
    operator+(Cost a, const Cost& b)
    {
        a += b;
        return a;
    }
    friend Cost
    operator*(double k, Cost c)
    {
        c.cycles *= k;
        c.energy_j *= k;
        return c;
    }
};

/** MPApca multiplication tuning (operand bits). */
struct MpapcaTuning
{
    // The hardware covers GMP's schoolbook through Toom-6H ranges
    // monolithically (paper §VII-B), so fast algorithms are "delayed
    // accordingly": above the 35904-bit base case MPApca picks the
    // cheapest of Toom-{2,3,4,6} and SSA by modelled cost. SSA only
    // becomes eligible once enough pieces amortize the transforms.
    std::uint64_t ssa_min = 8 * 35904;
};

/** Memoized recursive cost estimator. */
class CostModel
{
  public:
    explicit CostModel(
        const sim::SimConfig& config = sim::default_config(),
        const MpapcaTuning& tuning = MpapcaTuning());

    const sim::SimConfig& config() const { return config_; }
    const MpapcaTuning& tuning() const { return tuning_; }

    /** Name of the algorithm mul() would use at this size. */
    const char* mul_algorithm(std::uint64_t bits) const;

    Cost mul(std::uint64_t bits_a, std::uint64_t bits_b) const;
    Cost add(std::uint64_t bits) const;
    Cost shift(std::uint64_t bits) const;
    Cost div(std::uint64_t bits_a, std::uint64_t bits_b) const;
    Cost sqrt(std::uint64_t bits) const;
    Cost gcd(std::uint64_t bits) const;

    /** Seconds for a cycle count at the configured clock. */
    double
    seconds(double cycles) const
    {
        return cycles / (config_.freq_ghz * 1e9);
    }

  private:
    Cost mul_monolithic(std::uint64_t bits_a, std::uint64_t bits_b) const;
    Cost mul_balanced(std::uint64_t bits) const;
    Cost stats_cost(const sim::CoreStats& stats) const;

    sim::SimConfig config_;
    MpapcaTuning tuning_;
    sim::AnalyticModel analytic_;
    sim::EnergyModel energy_;
    mutable std::map<std::uint64_t, Cost> mul_memo_;
    mutable std::map<std::uint64_t, const char*> algo_memo_;
    mutable std::map<std::uint64_t, Cost> div_memo_;
    mutable std::map<std::uint64_t, Cost> sqrt_memo_;
};

} // namespace camp::mpapca

#endif // CAMP_MPAPCA_COST_MODEL_HPP
