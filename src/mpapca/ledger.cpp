#include "mpapca/ledger.hpp"

#include <sstream>

#include "support/assert.hpp"
#include "support/table.hpp"

namespace camp::mpapca {

void
Ledger::on_enter(mpn::OpKind kind, std::uint64_t bits_a,
                 std::uint64_t bits_b)
{
    if (depth_++ > 0)
        return; // nested op: covered by the outer operator's formula
    Cost cost;
    switch (kind) {
    case mpn::OpKind::Mul:
    case mpn::OpKind::Sqr:
        cost = model_.mul(bits_a, bits_b);
        break;
    case mpn::OpKind::Add:
    case mpn::OpKind::Sub:
        cost = model_.add(std::max(bits_a, bits_b));
        break;
    case mpn::OpKind::Shift:
        cost = model_.shift(bits_a);
        break;
    case mpn::OpKind::Div:
        cost = model_.div(bits_a, bits_b);
        break;
    case mpn::OpKind::Sqrt:
        cost = model_.sqrt(bits_a);
        break;
    case mpn::OpKind::Gcd:
        cost = model_.gcd(std::max(bits_a, bits_b));
        break;
    case mpn::OpKind::Other:
        break;
    }
    LedgerEntry& entry = entries_[static_cast<int>(kind)];
    entry.count += 1;
    entry.cost += cost;
}

void
Ledger::on_exit(mpn::OpKind)
{
    CAMP_ASSERT(depth_ > 0);
    --depth_;
}

void
Ledger::reset()
{
    entries_.fill(LedgerEntry{});
    faults_ = FaultStats{};
    diagnostics_.clear();
    depth_ = 0;
}

void
Ledger::record_fault_diagnostic(std::string diagnostic)
{
    // Diagnostic sinks fire from concurrent shard recoveries / serve
    // workers; retention stays capped and the push is serialized.
    std::lock_guard<std::mutex> lock(fault_mutex_);
    if (diagnostics_.size() < kMaxFaultDiagnostics)
        diagnostics_.push_back(std::move(diagnostic));
}

void
Ledger::fold_fault_stats(const FaultStats& delta)
{
    std::lock_guard<std::mutex> lock(fault_mutex_);
    faults_.injected += delta.injected;
    faults_.checks += delta.checks;
    faults_.detected += delta.detected;
    faults_.retried += delta.retried;
    faults_.fallbacks += delta.fallbacks;
}

FaultStats
Ledger::fault_stats_snapshot() const
{
    std::lock_guard<std::mutex> lock(fault_mutex_);
    return faults_;
}

double
Ledger::total_cycles() const
{
    double total = 0;
    for (const auto& entry : entries_)
        total += entry.cost.cycles;
    return total;
}

double
Ledger::total_seconds() const
{
    return model_.seconds(total_cycles());
}

double
Ledger::total_energy_j() const
{
    double total = 0;
    for (const auto& entry : entries_)
        total += entry.cost.energy_j;
    return total;
}

const LedgerEntry&
Ledger::entry(mpn::OpKind kind) const
{
    return entries_[static_cast<int>(kind)];
}

std::string
Ledger::table(const std::string& label) const
{
    Table table({"op", "count", "sim cycles", "sim energy (J)"});
    for (int k = 0; k < static_cast<int>(entries_.size()); ++k) {
        const LedgerEntry& entry = entries_[k];
        if (entry.count == 0)
            continue;
        table.add_row({mpn::op_kind_name(static_cast<mpn::OpKind>(k)),
                       std::to_string(entry.count),
                       Table::fmt(entry.cost.cycles),
                       Table::fmt(entry.cost.energy_j)});
    }
    std::ostringstream out;
    out << "== simulated cost ledger: " << label << " ==\n"
        << table.to_string()
        << "total: " << Table::fmt(total_seconds()) << " s, "
        << Table::fmt(total_energy_j()) << " J (simulated)\n";
    if (faults_.any()) {
        out << "faults: " << faults_.injected << " injected, "
            << faults_.checks << " checks, " << faults_.detected
            << " detected, " << faults_.retried << " retried, "
            << faults_.fallbacks << " cpu fallbacks\n";
    }
    return out.str();
}

} // namespace camp::mpapca
