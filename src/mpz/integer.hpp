/**
 * @file
 * Integer: sign-magnitude arbitrary-precision integers over Natural —
 * the GMP-MPZ-equivalent layer. Sign-magnitude (not two's complement)
 * matches the paper's §V-C: "negatives are supported via sign-magnitude
 * ... to avoid the additional costs on computing with sign-extended
 * leading 1s".
 */
#ifndef CAMP_MPZ_INTEGER_HPP
#define CAMP_MPZ_INTEGER_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "mpn/natural.hpp"

namespace camp::mpz {

using mpn::Natural;

/** Arbitrary-precision signed integer (sign + magnitude). */
class Integer
{
  public:
    Integer() = default;

    Integer(std::int64_t v) // NOLINT: implicit by design
        : negative_(v < 0),
          mag_(v < 0 ? static_cast<std::uint64_t>(-(v + 1)) + 1
                     : static_cast<std::uint64_t>(v))
    {
    }

    /** From a magnitude and sign (sign ignored for zero). */
    Integer(Natural mag, bool negative)
        : negative_(negative && !mag.is_zero()), mag_(std::move(mag))
    {
    }

    Integer(const Natural& n) : negative_(false), mag_(n) {} // NOLINT

    /** Parse optional leading '-' followed by decimal digits. */
    static Integer from_decimal(std::string_view s);

    bool is_zero() const { return mag_.is_zero(); }
    bool is_negative() const { return negative_; }
    bool is_odd() const { return mag_.is_odd(); }
    const Natural& abs() const { return mag_; }
    std::uint64_t bits() const { return mag_.bits(); }

    /** Low 64 bits of the magnitude with sign applied (may wrap). */
    std::int64_t to_int64() const;
    double to_double() const;
    std::string to_decimal() const;

    friend Integer operator-(const Integer& a) { return {a.mag_, !a.negative_}; }
    friend Integer operator+(const Integer& a, const Integer& b);
    friend Integer operator-(const Integer& a, const Integer& b);
    friend Integer operator*(const Integer& a, const Integer& b);
    /** Truncated division (rounds toward zero, like GMP tdiv / C99). */
    friend Integer operator/(const Integer& a, const Integer& b);
    /** Remainder with the sign of the dividend (C99 semantics). */
    friend Integer operator%(const Integer& a, const Integer& b);
    friend Integer operator<<(const Integer& a, std::uint64_t cnt);
    /** Arithmetic shift toward zero on the magnitude. */
    friend Integer operator>>(const Integer& a, std::uint64_t cnt);

    Integer& operator+=(const Integer& b) { return *this = *this + b; }
    Integer& operator-=(const Integer& b) { return *this = *this - b; }
    Integer& operator*=(const Integer& b) { return *this = *this * b; }

    friend bool
    operator==(const Integer& a, const Integer& b)
    {
        return a.negative_ == b.negative_ && a.mag_ == b.mag_;
    }
    friend std::strong_ordering operator<=>(const Integer& a,
                                            const Integer& b);

    /** Truncated quotient and remainder in one division. */
    static std::pair<Integer, Integer> divrem(const Integer& a,
                                              const Integer& b);

    /** Euclidean remainder in [0, |m|). */
    static Natural mod(const Integer& a, const Natural& m);

    /** a^e for e >= 0. */
    static Integer pow(const Integer& a, std::uint64_t e);

    /**
     * Modular exponentiation base^exp mod m for m >= 1; uses Montgomery
     * ladders for odd m and square-and-mod otherwise.
     */
    static Natural powmod(const Natural& base, const Natural& exp,
                          const Natural& m);

    /** Modular inverse of a mod m; throws if gcd(a, m) != 1. */
    static Natural invmod(const Natural& a, const Natural& m);

    /**
     * Miller–Rabin probabilistic primality test with @p rounds rounds
     * of deterministically seeded bases.
     */
    static bool is_probable_prime(const Natural& n, int rounds = 25,
                                  std::uint64_t seed = 0x5eed);

  private:
    bool negative_ = false;
    Natural mag_;
};

} // namespace camp::mpz

#endif // CAMP_MPZ_INTEGER_HPP
