#include "mpz/integer.hpp"

#include <stdexcept>
#include <vector>

#include "mpn/basic.hpp"
#include "mpn/mont.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace camp::mpz {

Integer
Integer::from_decimal(std::string_view s)
{
    if (s.empty())
        throw std::invalid_argument("Integer::from_decimal: empty");
    bool neg = false;
    if (s.front() == '-') {
        neg = true;
        s.remove_prefix(1);
    }
    return {Natural::from_decimal(s), neg};
}

std::int64_t
Integer::to_int64() const
{
    const auto v = static_cast<std::int64_t>(mag_.to_uint64());
    return negative_ ? -v : v;
}

double
Integer::to_double() const
{
    const double v = mag_.to_double();
    return negative_ ? -v : v;
}

std::string
Integer::to_decimal() const
{
    return negative_ ? "-" + mag_.to_decimal() : mag_.to_decimal();
}

Integer
operator+(const Integer& a, const Integer& b)
{
    if (a.negative_ == b.negative_)
        return {a.mag_ + b.mag_, a.negative_};
    // Opposite signs: larger magnitude wins.
    if (a.mag_ >= b.mag_)
        return {a.mag_ - b.mag_, a.negative_};
    return {b.mag_ - a.mag_, b.negative_};
}

Integer
operator-(const Integer& a, const Integer& b)
{
    return a + (-b);
}

Integer
operator*(const Integer& a, const Integer& b)
{
    return {a.mag_ * b.mag_, a.negative_ != b.negative_};
}

std::pair<Integer, Integer>
Integer::divrem(const Integer& a, const Integer& b)
{
    auto [q, r] = Natural::divrem(a.mag_, b.mag_);
    return {Integer(std::move(q), a.negative_ != b.negative_),
            Integer(std::move(r), a.negative_)};
}

Integer
operator/(const Integer& a, const Integer& b)
{
    return Integer::divrem(a, b).first;
}

Integer
operator%(const Integer& a, const Integer& b)
{
    return Integer::divrem(a, b).second;
}

Integer
operator<<(const Integer& a, std::uint64_t cnt)
{
    return {a.mag_ << cnt, a.negative_};
}

Integer
operator>>(const Integer& a, std::uint64_t cnt)
{
    return {a.mag_ >> cnt, a.negative_};
}

std::strong_ordering
operator<=>(const Integer& a, const Integer& b)
{
    if (a.negative_ != b.negative_)
        return a.negative_ ? std::strong_ordering::less
                           : std::strong_ordering::greater;
    const auto mag_order = a.mag_ <=> b.mag_;
    if (!a.negative_)
        return mag_order;
    if (mag_order == std::strong_ordering::less)
        return std::strong_ordering::greater;
    if (mag_order == std::strong_ordering::greater)
        return std::strong_ordering::less;
    return std::strong_ordering::equal;
}

Natural
Integer::mod(const Integer& a, const Natural& m)
{
    Natural r = a.mag_ % m;
    if (a.negative_ && !r.is_zero())
        r = m - r;
    return r;
}

Integer
Integer::pow(const Integer& a, std::uint64_t e)
{
    return {Natural::pow(a.mag_, e), a.negative_ && (e & 1)};
}

Natural
Integer::powmod(const Natural& base, const Natural& exp, const Natural& m)
{
    if (m.is_zero())
        throw std::invalid_argument("Integer::powmod: zero modulus");
    if (m == Natural(1))
        return Natural();
    if (exp.is_zero())
        return Natural(1);
    const Natural b = base % m;
    if (m.is_odd()) {
        // Montgomery left-to-right binary ladder.
        const mpn::MontCtx ctx(m.data(), m.size());
        const std::size_t nn = ctx.size();
        std::vector<mpn::Limb> x(nn, 0), xm(nn), acc(nn), t(nn);
        mpn::copy(x.data(), b.data(), b.size());
        ctx.to_mont(xm.data(), x.data());
        mpn::copy(acc.data(), ctx.one(), nn);
        for (std::uint64_t i = exp.bits(); i-- > 0;) {
            ctx.mul(t.data(), acc.data(), acc.data());
            acc = t;
            if (exp.bit(i)) {
                ctx.mul(t.data(), acc.data(), xm.data());
                acc = t;
            }
        }
        std::vector<mpn::Limb> r(nn);
        ctx.from_mont(r.data(), acc.data());
        return Natural::from_limbs(std::move(r));
    }
    // Even modulus: plain square-and-mod ladder.
    Natural acc(1);
    for (std::uint64_t i = exp.bits(); i-- > 0;) {
        acc = (acc * acc) % m;
        if (exp.bit(i))
            acc = (acc * b) % m;
    }
    return acc;
}

Natural
Integer::invmod(const Natural& a, const Natural& m)
{
    // Extended Euclid on (a mod m, m) with signed Bezout coefficients.
    if (m.is_zero())
        throw std::invalid_argument("Integer::invmod: zero modulus");
    Integer r0(a % m), r1(m);
    Integer s0(1), s1(0);
    while (!r1.is_zero()) {
        auto [q, r] = Integer::divrem(r0, r1);
        const Integer s2 = s0 - q * s1;
        r0 = r1;
        r1 = r;
        s0 = s1;
        s1 = s2;
    }
    if (r0.abs() != Natural(1))
        throw std::invalid_argument("Integer::invmod: not invertible");
    return Integer::mod(s0, m);
}

bool
Integer::is_probable_prime(const Natural& n, int rounds,
                           std::uint64_t seed)
{
    if (n < Natural(2))
        return false;
    for (std::uint64_t p : {2u, 3u, 5u, 7u, 11u, 13u, 17u, 19u, 23u,
                            29u, 31u, 37u}) {
        if (n == Natural(p))
            return true;
        if ((n % Natural(p)).is_zero())
            return false;
    }
    // n - 1 = d * 2^s with d odd.
    const Natural nm1 = n - Natural(1);
    std::uint64_t s = 0;
    Natural d = nm1;
    while (!d.is_odd()) {
        d >>= 1;
        ++s;
    }
    Rng rng(seed);
    for (int round = 0; round < rounds; ++round) {
        // Uniform base in [2, n - 2]; bias from modding is irrelevant
        // for the error bound.
        Natural base =
            Natural::random_bits(rng, n.bits()) % (n - Natural(3));
        base += Natural(2);
        Natural x = powmod(base, d, n);
        if (x == Natural(1) || x == nm1)
            continue;
        bool witness = true;
        for (std::uint64_t i = 1; i < s; ++i) {
            x = (x * x) % n;
            if (x == nm1) {
                witness = false;
                break;
            }
        }
        if (witness)
            return false;
    }
    return true;
}

} // namespace camp::mpz
