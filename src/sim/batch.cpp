#include "sim/batch.hpp"

#include "mpn/basic.hpp"
#include "sim/memory_agent.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace camp::sim {

using mpn::Natural;

BatchEngine::BatchEngine(const SimConfig& config, bool validate)
    : config_(config), validate_(validate), gather_unit_(config_)
{
}

BatchResult
BatchEngine::multiply_batch(
    const std::vector<std::pair<Natural, Natural>>& pairs)
{
    BatchResult result;
    CoreMemoryAgent cma(config_);
    std::uint64_t total_tasks = 0;

    for (const auto& [a, b] : pairs) {
        if (a.is_zero() || b.is_zero()) {
            result.products.emplace_back();
            continue;
        }
        CAMP_ASSERT(a.bits() <= config_.monolithic_cap_bits &&
                    b.bits() <= config_.monolithic_cap_bits);
        const auto x = to_hw_limbs(a, config_.limb_bits);
        const auto y = to_hw_limbs(b, config_.limb_bits);
        // Per-product convolution, exactly the monolithic dataflow but
        // bounded to this product's PE group.
        std::vector<u128> sums(x.size() + y.size() - 1, 0);
        for (std::size_t t = 0; t < sums.size(); ++t) {
            const std::size_t lo = t >= x.size() ? t - x.size() + 1 : 0;
            const std::size_t hi = std::min(y.size() - 1, t);
            for (std::size_t j = lo; j <= hi; ++j)
                sums[t] += static_cast<u128>(x[t - j]) * y[j];
            total_tasks += (hi - lo) / config_.q + 1;
        }
        result.products.push_back(gather_unit_.gather(sums));
        cma.stream_in(a.bits());
        cma.stream_in(b.bits());
        cma.stream_out(a.bits() + b.bits());
        if (validate_) {
            CAMP_ASSERT(result.products.back() == a * b);
        }
    }

    result.tasks = total_tasks;
    // Batch scheduling: tasks from independent products pack the whole
    // fabric (no inter-product dependencies), so waves are simply the
    // pooled-capacity quotient.
    result.waves =
        (total_tasks + config_.total_ipus() - 1) / config_.total_ipus();
    const std::uint64_t compute = result.waves * config_.limb_bits;
    result.bytes = cma.total_bytes();
    result.cycles = std::max<std::uint64_t>(compute, cma.cycles());
    return result;
}

} // namespace camp::sim
