#include "sim/batch.hpp"

#include <memory>

#include "mpn/basic.hpp"
#include "mpn/ophook.hpp"
#include "sim/gather_unit.hpp"
#include "sim/memory_agent.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace camp::sim {

using mpn::Natural;

BatchEngine::BatchEngine(const SimConfig& config, bool validate)
    : config_(config), validate_(validate)
{
}

BatchEngine::ProductOutcome
BatchEngine::multiply_one(std::uint64_t seed_index, const Natural& a,
                          const Natural& b) const
{
    // Sim-internal arithmetic (gathering, golden checks) must not be
    // announced to op hooks: it is not application kernel work, and
    // this body runs on pool threads.
    mpn::OpHookSuspend suspend;
    support::trace::Span span("sim.batch.product", "sim");
    span.arg("index", static_cast<double>(seed_index));
    span.arg("bits_a", static_cast<double>(a.bits()));
    ProductOutcome out;
    if (a.is_zero() || b.is_zero())
        return out;
    CAMP_ASSERT(a.bits() <= config_.monolithic_cap_bits &&
                b.bits() <= config_.monolithic_cap_bits);

    // Per-product fault stream: seeded by product index so the
    // injected sequence replays identically at any parallelism.
    std::unique_ptr<FaultEngine> faults;
    if (config_.faults.enabled()) {
        FaultConfig fc = config_.faults;
        fc.seed += seed_index;
        faults = std::make_unique<FaultEngine>(fc);
    }

    CoreMemoryAgent cma(config_, faults.get());
    auto x = to_hw_limbs(a, config_.limb_bits);
    auto y = to_hw_limbs(b, config_.limb_bits);
    cma.stream_in_limbs(x, a.bits());
    cma.stream_in_limbs(y, b.bits());

    // Per-product convolution, exactly the monolithic dataflow but
    // bounded to this product's PE group; the fault surface per IPU
    // task mirrors Core::run_work's fast-fidelity path.
    std::vector<u128> sums(x.size() + y.size() - 1, 0);
    for (std::size_t t = 0; t < sums.size(); ++t) {
        const std::size_t lo = t >= x.size() ? t - x.size() + 1 : 0;
        const std::size_t hi = std::min(y.size() - 1, t);
        for (std::size_t j = lo; j <= hi; ++j)
            sums[t] += static_cast<u128>(x[t - j]) * y[j];
        const std::uint64_t position_tasks = (hi - lo) / config_.q + 1;
        out.tasks += position_tasks;
        if (faults) {
            for (std::uint64_t w = 0; w < position_tasks; ++w) {
                if (faults->fire(FaultSite::IpuAccumulator))
                    sums[t] ^= static_cast<u128>(1)
                               << faults->below(2 * config_.limb_bits +
                                                config_.q);
                if (faults->fire(FaultSite::ConverterPattern))
                    sums[t] += static_cast<u128>(1 + faults->below(15))
                               << faults->below(config_.limb_bits);
            }
        }
    }

    GatherUnit gather_unit(config_);
    if (faults)
        gather_unit.set_fault_engine(faults.get());
    out.product = gather_unit.gather(sums);
    cma.stream_out(a.bits() + b.bits());
    out.bytes = cma.total_bytes();
    out.stall_cycles = cma.stall_cycles();
    if (faults)
        out.injected = faults->total_injected();

    if (validate_) {
        if (config_.faults.enabled()) {
            // Corruption is the injected, expected outcome: count it.
            out.faulty = out.product != a * b;
        } else {
            CAMP_ASSERT(out.product == a * b);
        }
    }
    return out;
}

unsigned
BatchEngine::run_slices(
    std::size_t count, unsigned parallelism,
    const std::function<void(std::size_t, std::size_t)>& run_slice)
    const
{
    support::ThreadPool& pool = support::ThreadPool::global();
    const bool fork = parallelism != 1 && count > 1 && pool.parallel() &&
                      support::parallel_allowed();
    // Products are chunked per pool task: one task per product drowned
    // small widths in spawn/steal overhead (the 0.47x batch_mul_pooled
    // regression). Outcomes depend only on the seed index, so placement
    // and chunking never change the results.
    if (fork) {
        const std::size_t chunks =
            std::min(count,
                     static_cast<std::size_t>(pool.executors()) * 4);
        const std::size_t step = (count + chunks - 1) / chunks;
        support::TaskGroup group(pool);
        for (std::size_t lo = step; lo < count; lo += step) {
            const std::size_t hi = std::min(count, lo + step);
            group.run([&run_slice, lo, hi] { run_slice(lo, hi); });
        }
        run_slice(0, std::min(count, step));
        group.wait();
        return pool.executors();
    }
    run_slice(0, count);
    return 1;
}

void
BatchEngine::fold_outcomes(std::vector<ProductOutcome>& outcomes,
                           BatchResult& result) const
{
    namespace metrics = support::metrics;
    // Fold in product order: aggregates are independent of placement.
    const std::size_t count = outcomes.size();
    std::uint64_t stall_cycles = 0;
    result.products.reserve(count);
    result.per_product.reserve(count);
    for (ProductOutcome& out : outcomes) {
        result.products.push_back(std::move(out.product));
        result.per_product.push_back({out.tasks, out.bytes,
                                      out.stall_cycles, out.injected,
                                      out.faulty});
        result.tasks += out.tasks;
        result.bytes += out.bytes;
        stall_cycles += out.stall_cycles;
        result.injected += out.injected;
        result.faulty += out.faulty ? 1 : 0;
    }
    metrics::counter("sim.batch.products").add(count);
    metrics::counter("sim.batch.faulty").add(result.faulty);
    metrics::counter("sim.batch.injected").add(result.injected);
    metrics::gauge("sim.batch.size_max")
        .update_max(static_cast<std::int64_t>(count));

    // Batch scheduling: tasks from independent products pack the whole
    // fabric (no inter-product dependencies), so waves are simply the
    // pooled-capacity quotient; memory time is the pooled traffic at
    // the duty-limited LLC bandwidth plus injected stalls (identical
    // to accumulating one CMA across the whole batch).
    result.waves =
        (result.tasks + config_.total_ipus() - 1) / config_.total_ipus();
    const std::uint64_t compute = result.waves * config_.limb_bits;
    const double bpc = config_.llc_bytes_per_cycle();
    const std::uint64_t memory_cycles =
        static_cast<std::uint64_t>(
            static_cast<double>(result.bytes) / bpc + 0.999999) +
        stall_cycles;
    result.cycles = std::max<std::uint64_t>(compute, memory_cycles);
}

BatchResult
BatchEngine::multiply_batch(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    unsigned parallelism, const std::vector<std::uint64_t>* seed_indices)
{
    support::trace::Span span("sim.batch.multiply_batch", "sim");
    span.arg("count", static_cast<double>(pairs.size()));
    BatchResult result;
    const std::size_t count = pairs.size();
    CAMP_ASSERT(seed_indices == nullptr ||
                seed_indices->size() == count);
    std::vector<ProductOutcome> outcomes(count);
    const auto seed_of = [seed_indices](std::size_t i) {
        return seed_indices == nullptr
                   ? static_cast<std::uint64_t>(i)
                   : (*seed_indices)[i];
    };
    const auto run_slice = [this, &outcomes, &pairs,
                            &seed_of](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            outcomes[i] = multiply_one(seed_of(i), pairs[i].first,
                                       pairs[i].second);
    };
    result.parallelism = run_slices(count, parallelism, run_slice);
    fold_outcomes(outcomes, result);
    return result;
}

BatchResult
BatchEngine::multiply_batch_views(
    const std::pair<mpn::LimbView, mpn::LimbView>* views,
    std::size_t count, unsigned parallelism,
    const std::vector<std::uint64_t>* seed_indices)
{
    support::trace::Span span("sim.batch.multiply_batch", "sim");
    span.arg("count", static_cast<double>(count));
    BatchResult result;
    CAMP_ASSERT(seed_indices == nullptr ||
                seed_indices->size() == count);
    std::vector<ProductOutcome> outcomes(count);
    const auto seed_of = [seed_indices](std::size_t i) {
        return seed_indices == nullptr
                   ? static_cast<std::uint64_t>(i)
                   : (*seed_indices)[i];
    };
    // Each product materializes its operands from the wave-owned views
    // on the executing pool thread: that copy *is* the simulated
    // stream-in (the core reads operands into its SRAM regardless), so
    // the host-side hop SubmitQueue used to pay is gone while the sim
    // dataflow is unchanged.
    const auto run_slice = [this, &outcomes, views,
                            &seed_of](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            outcomes[i] = multiply_one(seed_of(i),
                                       views[i].first.to_natural(),
                                       views[i].second.to_natural());
    };
    result.parallelism = run_slices(count, parallelism, run_slice);
    fold_outcomes(outcomes, result);
    return result;
}

} // namespace camp::sim
