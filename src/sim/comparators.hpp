/**
 * @file
 * Analytic comparison models for the Table III / Figure 11 baseline
 * systems. We have no V100, Ice Lake, or DS/P silicon, so each
 * comparator is a documented cost model (DESIGN.md §4):
 *  - area/power/technology figures come straight from Table III;
 *  - time scaling anchors at the paper's measured 4096x4096-bit point
 *    and extrapolates with the platform's algorithmic exponent within
 *    its applicable range.
 */
#ifndef CAMP_SIM_COMPARATORS_HPP
#define CAMP_SIM_COMPARATORS_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace camp::sim {

/** Static description + time model of one comparison platform. */
struct PlatformModel
{
    std::string name;
    std::string technology;
    double area_mm2;
    double power_w;
    double anchor_time_s;      ///< paper-measured 4096x4096 mult time
    double scaling_exponent;   ///< time ~ anchor * (bits/4096)^exponent
    std::uint64_t min_bits;    ///< applicable range (0 = n/a)
    std::uint64_t max_bits;
    std::string note;

    /** Modelled time of an N-bit x N-bit multiplication; nullopt when
     * outside the platform's applicable range. */
    std::optional<double> mul_time_s(std::uint64_t bits) const;
};

/** V100 + CGBN (batch processing; times amortized over 100k). */
const PlatformModel& v100_cgbn();

/** AVX512IFMA (Gueron–Krasnov implementation on Ice Lake). */
const PlatformModel& avx512ifma();

/** DS/P digit-serial/parallel multiplier, iso-throughput scaling. */
const PlatformModel& dsp_multiplier();

/** Bit-Tactical, iso-throughput scaling. */
const PlatformModel& bit_tactical();

/** SkyLake-X CPU core constants (area/power for Table III; the time
 * column is measured live from our mpn library). */
const PlatformModel& skylake_cpu();

/** All Table III comparison platforms in paper order. */
std::vector<const PlatformModel*> table3_platforms();

} // namespace camp::sim

#endif // CAMP_SIM_COMPARATORS_HPP
