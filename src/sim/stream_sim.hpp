/**
 * @file
 * Cycle-stepped streaming simulation of the memory path (paper §V-B3):
 * the CMA prefetches operand data from the LLC as cache lines under
 * the duty-cycle limit, PEMAs buffer dispatch blocks (4 flows x 32
 * bits) and the PE array consumes one wave's worth of blocks per
 * limb_bits cycles. This validates the analytic max(compute, memory)
 * folding against an explicit pipeline with finite buffering, and
 * exposes the stall behaviour when PEMA buffering is too shallow —
 * the "data block is saved in PEMAs and consumed over time till the
 * next data block arrives" mechanism.
 */
#ifndef CAMP_SIM_STREAM_SIM_HPP
#define CAMP_SIM_STREAM_SIM_HPP

#include <cstdint>

#include "sim/config.hpp"

namespace camp::sim {

/** Outcome of one streamed operation. */
struct StreamStats
{
    std::uint64_t cycles = 0;        ///< total, including stalls
    std::uint64_t stall_cycles = 0;  ///< compute idle awaiting data
    std::uint64_t fill_cycles = 0;   ///< initial buffer fill
    std::uint64_t waves = 0;
    double
    overlap_efficiency() const
    {
        return cycles == 0 ? 1.0
                           : 1.0 - static_cast<double>(stall_cycles) /
                                       static_cast<double>(cycles);
    }
};

/** Explicit prefetch/consume pipeline over the CMA -> PEMA path. */
class StreamingSimulator
{
  public:
    /**
     * @param buffer_waves PEMA buffering depth in waves of blocks
     *        (2 = double buffering, the hardware's scheme).
     */
    explicit StreamingSimulator(
        const SimConfig& config = default_config(),
        unsigned buffer_waves = 2);

    /**
     * Stream one monolithic multiplication of the given operand widths
     * through the pipeline; returns the cycle accounting.
     */
    StreamStats run_multiply(std::uint64_t bits_a,
                             std::uint64_t bits_b) const;

  private:
    SimConfig config_;
    unsigned buffer_waves_;
};

} // namespace camp::sim

#endif // CAMP_SIM_STREAM_SIM_HPP
