#include "sim/converter.hpp"

#include <bit>

#include "support/assert.hpp"

namespace camp::sim {

Converter::Converter(const SimConfig& config) : config_(config)
{
    CAMP_ASSERT(config_.q <= 8);
}

unsigned
Converter::active_adders() const
{
    return config_.patterns() - config_.q - 1;
}

std::vector<Bitflow>
Converter::convert(const std::vector<Bitflow>& inputs,
                   ConverterStats* stats) const
{
    const unsigned q = config_.q;
    const unsigned np = config_.patterns();
    CAMP_ASSERT(inputs.size() == q);

    std::size_t len = 0;
    for (const auto& flow : inputs)
        len = std::max(len, flow.length());
    const std::size_t out_len = len + q; // drain carries of up to q adds

    // Reuse plan: each non-trivial pattern s is built from one bit-serial
    // adder combining two previously available streams. Pairs are split
    // as (lowest set bit, rest); "rest" is either a single input or an
    // already-generated smaller pattern — the Fig. 9(b) reuse tree.
    std::vector<Bitflow> out(np);
    std::vector<unsigned> carry(np, 0);
    for (auto& flow : out)
        flow = Bitflow();

    std::uint64_t adder_ops = 0;
    for (std::size_t t = 0; t < out_len; ++t) {
        // Pattern 0 is the constant-zero stream; single-bit patterns
        // are passthroughs of the inputs.
        out[0].push(0);
        for (unsigned i = 0; i < q; ++i)
            out[1u << i].push(inputs[i].bit(t));
        for (unsigned s = 1; s < np; ++s) {
            if (std::popcount(s) < 2)
                continue;
            const unsigned low = s & (~s + 1); // lowest set bit
            const unsigned rest = s & ~low;
            // Serial full adder over the two operand streams.
            const int a = out[low].bit(t);
            const int b = out[rest].bit(t);
            const unsigned sum = static_cast<unsigned>(a) +
                                 static_cast<unsigned>(b) + carry[s];
            out[s].push(static_cast<int>(sum & 1));
            carry[s] = sum >> 1;
            ++adder_ops;
        }
    }
    for (unsigned s = 0; s < np; ++s)
        CAMP_ASSERT(carry[s] == 0);

    // Fault injection: a corrupted pattern-SRAM cell shows up as one
    // wrong bit in one generated pattern stream.
    if (faults_ && faults_->fire(FaultSite::ConverterPattern)) {
        const unsigned victim =
            1 + static_cast<unsigned>(faults_->below(np - 1));
        out[victim].flip(
            static_cast<std::size_t>(faults_->below(out_len)));
    }

    if (stats) {
        stats->adder_bit_ops += adder_ops;
        stats->cycles += out_len;
    }
    return out;
}

} // namespace camp::sim
