/**
 * @file
 * Bitflow: the bit-serial stream abstraction Cambricon-P datapaths are
 * built from (one bit per cycle, LSB first). Functional units consume
 * and produce Bitflows; the stored vector is the cycle-by-cycle trace
 * of the corresponding wire.
 */
#ifndef CAMP_SIM_BITFLOW_HPP
#define CAMP_SIM_BITFLOW_HPP

#include <cstdint>
#include <vector>

#include "support/bits.hpp"

namespace camp::sim {

/** A bit-serial stream, index = cycle, LSB first. */
class Bitflow
{
  public:
    Bitflow() = default;

    /** Stream of @p len cycles carrying the low bits of @p value. */
    static Bitflow
    from_value(u128 value, std::size_t len)
    {
        Bitflow flow;
        flow.bits_.resize(len);
        for (std::size_t i = 0; i < len; ++i)
            flow.bits_[i] =
                static_cast<std::uint8_t>((value >> i) & 1);
        return flow;
    }

    /** Bit at cycle @p t (0 once the stream has drained). */
    int
    bit(std::size_t t) const
    {
        return t < bits_.size() ? bits_[t] : 0;
    }

    void
    push(int bit)
    {
        bits_.push_back(static_cast<std::uint8_t>(bit & 1));
    }

    /** Invert the bit at cycle @p t (no-op past the stream end). */
    void
    flip(std::size_t t)
    {
        if (t < bits_.size())
            bits_[t] ^= 1;
    }

    std::size_t length() const { return bits_.size(); }

    /** Value carried by the stream (must fit 128 bits). */
    u128
    value() const
    {
        u128 v = 0;
        for (std::size_t i = bits_.size(); i-- > 0;)
            v = (v << 1) | bits_[i];
        return v;
    }

  private:
    std::vector<std::uint8_t> bits_;
};

} // namespace camp::sim

#endif // CAMP_SIM_BITFLOW_HPP
