#include "sim/analytic_model.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace camp::sim {

AnalyticModel::AnalyticModel(const SimConfig& config) : config_(config) {}

ScheduleCounts
AnalyticModel::multiply_counts(std::uint64_t nx, std::uint64_t ny) const
{
    CAMP_ASSERT(nx >= 1 && ny >= 1);
    // Mirror CoreController::schedule_multiply without materializing:
    // position t contributes ceil(pairs(t) / q) tasks, dealt to PE
    // t % n_pe. pairs(t) ramps 1..min(nx,ny), plateaus, then ramps down.
    const std::uint64_t q = config_.q;
    const std::uint64_t positions = nx + ny - 1;
    ScheduleCounts counts;
    std::vector<std::uint64_t> per_pe(config_.n_pe, 0);
    const std::uint64_t lo_n = std::min(nx, ny);
    for (std::uint64_t t = 0; t < positions; ++t) {
        const std::uint64_t ramp_up = t + 1;
        const std::uint64_t ramp_down = positions - t;
        const std::uint64_t pairs =
            std::min({ramp_up, ramp_down, lo_n});
        const std::uint64_t tasks = (pairs + q - 1) / q;
        counts.tasks += tasks;
        per_pe[t % config_.n_pe] += tasks;
    }
    const std::uint64_t max_pe =
        *std::max_element(per_pe.begin(), per_pe.end());
    counts.waves = (max_pe + config_.n_ipu - 1) / config_.n_ipu;
    return counts;
}

CoreStats
AnalyticModel::multiply_stats(std::uint64_t bits_a,
                              std::uint64_t bits_b) const
{
    CAMP_ASSERT(bits_a <= config_.monolithic_cap_bits &&
                bits_b <= config_.monolithic_cap_bits);
    CoreStats stats;
    if (bits_a == 0 || bits_b == 0)
        return stats;
    const unsigned L = config_.limb_bits;
    const std::uint64_t nx = (bits_a + L - 1) / L;
    const std::uint64_t ny = (bits_b + L - 1) / L;
    const ScheduleCounts counts = multiply_counts(nx, ny);
    stats.tasks = counts.tasks;
    stats.waves = counts.waves;
    stats.compute_cycles = counts.waves * L;

    // Event counts for the energy model; 15/16 expected nonzero index
    // columns for dense random operands.
    stats.ipu.selects = counts.tasks * L;
    stats.ipu.zero_skips = stats.ipu.selects / 16;
    stats.ipu.accum_bit_ops =
        (stats.ipu.selects - stats.ipu.zero_skips) * (L + config_.q);
    stats.ipu.cycles = stats.compute_cycles;
    stats.converter.adder_bit_ops =
        counts.tasks *
        static_cast<std::uint64_t>(config_.patterns() - config_.q - 1) *
        (L + config_.q);
    stats.converter.cycles = stats.compute_cycles;
    stats.gather.fa_bit_ops = (nx + ny) * L * 3;
    stats.gather.latency_parallel = L + nx + ny;
    stats.gather.latency_sequential = (nx + ny) * L;

    // Rounding mirrors the CMA's per-stream accounting.
    stats.bytes = (bits_a + 7) / 8 + (bits_b + 7) / 8 +
                  (bits_a + bits_b + 7) / 8;
    stats.memory_cycles = static_cast<std::uint64_t>(
        static_cast<double>(stats.bytes) /
            config_.llc_bytes_per_cycle() +
        0.999999);
    stats.cycles = std::max(stats.compute_cycles, stats.memory_cycles);
    return stats;
}

std::uint64_t
AnalyticModel::multiply_cycles(std::uint64_t bits_a,
                               std::uint64_t bits_b) const
{
    return multiply_stats(bits_a, bits_b).cycles;
}

CoreStats
AnalyticModel::linear_stats(std::uint64_t bits, unsigned streams) const
{
    CoreStats stats;
    if (bits == 0)
        return stats;
    stats.bytes = (static_cast<std::uint64_t>(streams) * bits + 7) / 8;
    stats.memory_cycles = static_cast<std::uint64_t>(
        static_cast<double>(stats.bytes) /
            config_.llc_bytes_per_cycle() +
        0.999999);
    // Bit-serial adders across PEs consume q * n_pe bits per cycle.
    const std::uint64_t adder_bits_per_cycle =
        static_cast<std::uint64_t>(config_.q) * config_.n_pe;
    stats.compute_cycles = (bits + adder_bits_per_cycle - 1) /
                           adder_bits_per_cycle;
    stats.gather.fa_bit_ops = bits;
    stats.cycles = std::max(stats.compute_cycles, stats.memory_cycles);
    return stats;
}

CoreStats
AnalyticModel::shift_stats(std::uint64_t bits) const
{
    // Standalone shift: stream through, no arithmetic (§V-C: timing
    // delays/advancements).
    return linear_stats(bits, 2);
}

double
AnalyticModel::peak_mac64_per_s() const
{
    // Each IPU retires one q-element L-bit inner product per L cycles;
    // its MAC64 equivalent is q * L^2 / 64^2 (= 1 for q=4, L=32).
    const double tasks_per_s =
        static_cast<double>(config_.total_ipus()) * config_.freq_ghz *
        1e9 / config_.limb_bits;
    const double mac64_per_task = static_cast<double>(config_.q) *
                                  config_.limb_bits * config_.limb_bits /
                                  (64.0 * 64.0);
    return tasks_per_s * mac64_per_task;
}

} // namespace camp::sim
