/**
 * @file
 * Memory agents (paper §V-B3): the CMA streams data between the LLC
 * and the PEs in blocks of 4 flows x 32 bits; PEMAs buffer one block
 * per PE and feed the IPU index flows. This model tracks the traffic
 * and the bandwidth-limited cycle count (at the configured duty cycle)
 * so the Core can take max(compute, memory) — the roofline behaviour
 * of Fig. 12.
 */
#ifndef CAMP_SIM_MEMORY_AGENT_HPP
#define CAMP_SIM_MEMORY_AGENT_HPP

#include <cstdint>

#include "sim/config.hpp"

namespace camp::sim {

/** Core Memory Agent traffic/cycle accounting. */
class CoreMemoryAgent
{
  public:
    explicit CoreMemoryAgent(const SimConfig& config) : config_(config) {}

    /** Record an operand stream of @p bits read from the LLC. */
    void
    stream_in(std::uint64_t bits)
    {
        bytes_in_ += (bits + 7) / 8;
    }

    /** Record a result stream of @p bits written to the LLC. */
    void
    stream_out(std::uint64_t bits)
    {
        bytes_out_ += (bits + 7) / 8;
    }

    std::uint64_t bytes_in() const { return bytes_in_; }
    std::uint64_t bytes_out() const { return bytes_out_; }
    std::uint64_t total_bytes() const { return bytes_in_ + bytes_out_; }

    /** Dispatch blocks moved on the core data bus (4 x 32-bit flows). */
    std::uint64_t
    blocks() const
    {
        const std::uint64_t block_bytes =
            static_cast<std::uint64_t>(config_.q) * config_.limb_bits /
            8;
        return (total_bytes() + block_bytes - 1) / block_bytes;
    }

    /** Cycles needed at the duty-limited LLC bandwidth. */
    std::uint64_t
    cycles() const
    {
        const double bpc = config_.llc_bytes_per_cycle();
        return static_cast<std::uint64_t>(
            static_cast<double>(total_bytes()) / bpc + 0.999999);
    }

    void
    reset()
    {
        bytes_in_ = 0;
        bytes_out_ = 0;
    }

  private:
    const SimConfig& config_;
    std::uint64_t bytes_in_ = 0;
    std::uint64_t bytes_out_ = 0;
};

} // namespace camp::sim

#endif // CAMP_SIM_MEMORY_AGENT_HPP
