/**
 * @file
 * Memory agents (paper §V-B3): the CMA streams data between the LLC
 * and the PEs in blocks of 4 flows x 32 bits; PEMAs buffer one block
 * per PE and feed the IPU index flows. This model tracks the traffic
 * and the bandwidth-limited cycle count (at the configured duty cycle)
 * so the Core can take max(compute, memory) — the roofline behaviour
 * of Fig. 12.
 */
#ifndef CAMP_SIM_MEMORY_AGENT_HPP
#define CAMP_SIM_MEMORY_AGENT_HPP

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "support/fault.hpp"

namespace camp::sim {

/** Core Memory Agent traffic/cycle accounting. */
class CoreMemoryAgent
{
  public:
    /** Cycles lost per injected stream stall. */
    static constexpr std::uint64_t kStallPenaltyCycles = 128;

    explicit CoreMemoryAgent(const SimConfig& config,
                             FaultEngine* faults = nullptr)
        : config_(config), faults_(faults)
    {
    }

    /** Record an operand stream of @p bits read from the LLC. */
    void
    stream_in(std::uint64_t bits)
    {
        bytes_in_ += (bits + 7) / 8;
    }

    /**
     * Stream an operand's hardware limbs in from the LLC. Traffic is
     * charged for the full @p bits; under fault injection the delivered
     * stream may be truncated (MemoryTruncate: high limbs never arrive)
     * or stalled (MemoryStall: kStallPenaltyCycles added).
     */
    void
    stream_in_limbs(std::vector<std::uint32_t>& limbs, std::uint64_t bits)
    {
        stream_in(bits);
        if (!faults_)
            return;
        if (limbs.size() > 1 &&
            faults_->fire(FaultSite::MemoryTruncate)) {
            const std::size_t keep = 1 + static_cast<std::size_t>(
                faults_->below(limbs.size() - 1));
            limbs.resize(keep);
            while (limbs.size() > 1 && limbs.back() == 0)
                limbs.pop_back();
        }
        if (faults_->fire(FaultSite::MemoryStall))
            stall_cycles_ += kStallPenaltyCycles;
    }

    /** Record a result stream of @p bits written to the LLC. */
    void
    stream_out(std::uint64_t bits)
    {
        bytes_out_ += (bits + 7) / 8;
    }

    std::uint64_t bytes_in() const { return bytes_in_; }
    std::uint64_t bytes_out() const { return bytes_out_; }
    std::uint64_t total_bytes() const { return bytes_in_ + bytes_out_; }

    /** Dispatch blocks moved on the core data bus (4 x 32-bit flows). */
    std::uint64_t
    blocks() const
    {
        const std::uint64_t block_bytes =
            static_cast<std::uint64_t>(config_.q) * config_.limb_bits /
            8;
        return (total_bytes() + block_bytes - 1) / block_bytes;
    }

    /** Cycles needed at the duty-limited LLC bandwidth, plus any
     * injected stall penalties. */
    std::uint64_t
    cycles() const
    {
        const double bpc = config_.llc_bytes_per_cycle();
        return static_cast<std::uint64_t>(
                   static_cast<double>(total_bytes()) / bpc + 0.999999) +
               stall_cycles_;
    }

    std::uint64_t stall_cycles() const { return stall_cycles_; }

    void
    reset()
    {
        bytes_in_ = 0;
        bytes_out_ = 0;
        stall_cycles_ = 0;
    }

  private:
    const SimConfig& config_;
    FaultEngine* faults_ = nullptr;
    std::uint64_t bytes_in_ = 0;
    std::uint64_t bytes_out_ = 0;
    std::uint64_t stall_cycles_ = 0;
};

} // namespace camp::sim

#endif // CAMP_SIM_MEMORY_AGENT_HPP
