#include "sim/comparators.hpp"

#include <cmath>

namespace camp::sim {

std::optional<double>
PlatformModel::mul_time_s(std::uint64_t bits) const
{
    if (anchor_time_s <= 0 || bits < min_bits || bits > max_bits)
        return std::nullopt;
    const double ratio = static_cast<double>(bits) / 4096.0;
    return anchor_time_s * std::pow(ratio, scaling_exponent);
}

const PlatformModel&
v100_cgbn()
{
    // Table III: 815 mm^2, 220.58 W, 1.56e-8 s amortized over a batch
    // of 100k. CGBN multiplies with schoolbook across cooperative
    // groups -> ~quadratic scaling; applicable up to CGBN's ~32k-bit
    // instance limit and only in batch mode.
    static const PlatformModel model{
        "V100 (CGBN)", "TSMC 12 nm", 815.0, 220.58, 1.56e-8, 2.0,
        256, 32768,
        "batch processing only; time amortized over 100k multiplies"};
    return model;
}

const PlatformModel&
avx512ifma()
{
    // Table III: ~0.54 mm^2 (unit share of the die), 13.26 W, 5.70e-7 s
    // at 4096 bits. Packed 52-bit schoolbook -> quadratic scaling over
    // the ranges the Gueron–Krasnov kernels cover.
    static const PlatformModel model{
        "AVX512IFMA", "Intel 10 nm", 0.54, 13.26, 5.70e-7, 2.0,
        512, 16384, "estimated from die photo; SIMD schoolbook"};
    return model;
}

const PlatformModel&
dsp_multiplier()
{
    // Table III: iso-throughput with Cambricon-P (no absolute time).
    static const PlatformModel model{
        "DS/P [38]", "TSMC 16 nm", 5.80, 9.20, 0.0, 0.0, 0, 0,
        "iso-throughput comparison; p.p.a. only"};
    return model;
}

const PlatformModel&
bit_tactical()
{
    static const PlatformModel model{
        "Bit-Tactical [42]", "TSMC 16 nm", 7.12, 18.29, 0.0, 0.0, 0, 0,
        "iso-throughput comparison; p.p.a. only"};
    return model;
}

const PlatformModel&
skylake_cpu()
{
    // Table III: ~17.98 mm^2 core estimate, 7.43 W single core busy.
    // anchor_time is 0: the benchmark measures our mpn library live.
    static const PlatformModel model{
        "SkyLake-X (GMP-class mpn)", "Intel 14 nm", 17.98, 7.43, 0.0,
        0.0, 0, 0, "time measured live from this repository's mpn"};
    return model;
}

std::vector<const PlatformModel*>
table3_platforms()
{
    return {&skylake_cpu(), &v100_cgbn(), &avx512ifma(),
            &dsp_multiplier(), &bit_tactical()};
}

} // namespace camp::sim
