#include "sim/config.hpp"

#include <limits>
#include <sstream>

#include "support/errors.hpp"

namespace camp::sim {

namespace {

[[noreturn]] void
reject(const std::string& what)
{
    throw ConfigError("SimConfig: " + what);
}

} // namespace

void
validate(const SimConfig& config)
{
    if (config.n_pe == 0)
        reject("n_pe must be nonzero");
    if (config.n_ipu == 0)
        reject("n_ipu must be nonzero");
    const std::uint64_t total = static_cast<std::uint64_t>(config.n_pe) *
                                config.n_ipu;
    if (total > std::numeric_limits<unsigned>::max())
        reject("n_pe * n_ipu overflows the IPU count");
    if (config.limb_bits != 32)
        reject("only the 32-bit hardware limb width is supported");
    if (config.q != 4)
        reject("only q = 4 bitflows per IPU is supported");
    if (!(config.freq_ghz > 0))
        reject("freq_ghz must be positive");
    if (!(config.llc_gbps > 0))
        reject("llc_gbps must be positive");
    if (!(config.ma_duty > 0) || config.ma_duty > 1.0)
        reject("ma_duty must be in (0, 1]");
    if (config.monolithic_cap_bits == 0)
        reject("monolithic_cap_bits must be nonzero");
    for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
        const double rate = config.faults.rate[i];
        if (!(rate >= 0.0) || rate > 1.0) {
            std::ostringstream what;
            what << "fault rate for "
                 << fault_site_name(static_cast<FaultSite>(i))
                 << " must be in [0, 1], got " << rate;
            reject(what.str());
        }
    }
}

SimConfig
validated(SimConfig config)
{
    config.faults = FaultConfig::from_env(config.faults);
    validate(config);
    return config;
}

} // namespace camp::sim
