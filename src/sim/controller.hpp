/**
 * @file
 * Two-level bitflow control (paper §V-B3): the Core Controller (CC)
 * decomposes an arbitrary-precision multiplication — viewed as the
 * polynomial convolution of L-bit limb vectors (Eq. 1) — into per-PE
 * pieces, and each PE Controller (PEC) decomposes its piece into
 * q-element inner-product tasks for the IPUs. Both levels produce
 * inner-product-shaped work: the fractal controlling scheme of [60].
 */
#ifndef CAMP_SIM_CONTROLLER_HPP
#define CAMP_SIM_CONTROLLER_HPP

#include <cstdint>
#include <vector>

#include "sim/config.hpp"

namespace camp::sim {

/**
 * One IPU work item: the partial inner product
 * sum_{j in [j_begin, j_end)} x_{t-j} * y_j for convolution position t,
 * with j_end - j_begin <= q.
 */
struct IpuWork
{
    std::uint32_t t;
    std::uint32_t j_begin;
    std::uint32_t j_end;
};

/** Schedule: work items grouped by PE, then by wave inside the PE. */
struct Schedule
{
    std::vector<std::vector<IpuWork>> per_pe; ///< n_pe lists
    std::uint64_t total_tasks = 0;
    std::uint64_t waves = 0; ///< ceil(max per-PE tasks / n_ipu)
};

/** Core Controller: top-level fractal decomposition. */
class CoreController
{
  public:
    /**
     * Decompose an nx-limb by ny-limb convolution. Convolution
     * positions are dealt round-robin across PEs (the monolithic
     * inner-product mode where PEs are activated in sequence to align
     * result timing, §V-B3).
     */
    static Schedule schedule_multiply(std::size_t nx, std::size_t ny,
                                      const SimConfig& config);
};

/** PE Controller: splits one position's pair list into <= q chunks. */
class PeController
{
  public:
    static std::vector<IpuWork>
    split_position(std::uint32_t t, std::uint32_t j_begin,
                   std::uint32_t j_end, const SimConfig& config);
};

} // namespace camp::sim

#endif // CAMP_SIM_CONTROLLER_HPP
