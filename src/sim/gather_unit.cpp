#include "sim/gather_unit.hpp"

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace camp::sim {

GatherUnit::GatherUnit(const SimConfig& config) : config_(config) {}

mpn::Natural
GatherUnit::gather(const std::vector<u128>& psums,
                   GatherStats* stats) const
{
    const unsigned L = config_.limb_bits;
    const u128 mask = (static_cast<u128>(1) << L) - 1;
    const std::size_t n = psums.size();
    if (n == 0)
        return mpn::Natural();

    // Each partial sum spans several L-bit chunks; segment s of the
    // result receives chunk (s - i) of psums[i]. With q = 4 and 32-bit
    // limbs a partial sum from one convolution position is at most
    // L + 64-ish bits wide, so only a few diagonals contribute.
    std::size_t max_chunks = 1;
    for (const u128 p : psums) {
        const std::size_t chunks =
            p == 0 ? 1 : (static_cast<std::size_t>(bit_length(p)) + L -
                          1) / L;
        max_chunks = std::max(max_chunks, chunks);
    }
    const std::size_t segments = n + max_chunks; // generous tail

    // Stage 1 (parallel across segments): compute each segment's local
    // sum of aligned chunks for *every possible* incoming carry. The
    // local sum of k chunks is < k * 2^L, so the outgoing carry is at
    // most k - 1 + 1: bounded independent of the chain length — the
    // §IV-A observation generalized to multi-chunk partial sums.
    std::vector<u128> local(segments, 0);
    std::uint64_t fa_ops = 0;
    for (std::size_t i = 0; i < n; ++i) {
        u128 p = psums[i];
        std::size_t s = i;
        while (p != 0) {
            CAMP_ASSERT(s < segments);
            local[s] += p & mask;
            fa_ops += L;
            p >>= L;
            ++s;
        }
    }
    const u128 max_carry_bound =
        static_cast<u128>(max_chunks) + 1; // loose per-segment bound

    // Fault injection: a broken selection-chain mux drops the incoming
    // carry of one segment.
    std::size_t drop_carry_at = segments;
    if (faults_ && faults_->fire(FaultSite::GatherCarry))
        drop_carry_at = static_cast<std::size_t>(
            faults_->below(segments));

    // Stage 2: carry-select. Every segment publishes value(cin) =
    // low L bits and cout(cin) for each speculative carry-in; the
    // selection chain then ripples one select per segment.
    std::vector<mpn::Limb> out_limbs;
    u128 carry = 0;
    std::uint64_t variants = 0;
    for (std::size_t s = 0; s < segments; ++s) {
        variants += static_cast<std::uint64_t>(max_carry_bound) + 1;
        if (s == drop_carry_at)
            carry = 0;
        const u128 total = local[s] + carry;
        const u128 low = total & mask;
        carry = total >> L;
        CAMP_ASSERT(carry <= max_carry_bound);
        // Pack two 32-bit segments per 64-bit output limb.
        if (s % 2 == 0)
            out_limbs.push_back(static_cast<mpn::Limb>(low));
        else
            out_limbs.back() |= static_cast<mpn::Limb>(low) << 32;
    }
    CAMP_ASSERT(carry == 0);

    if (stats) {
        stats->fa_bit_ops += fa_ops;
        stats->carry_variants += variants;
        // Carry parallel: all segments sum concurrently over L bit-serial
        // cycles, then one select per segment resolves the chain.
        stats->latency_parallel += L + segments;
        // Naive gathering: segment s cannot start until s-1 finished.
        stats->latency_sequential += segments * L;
    }
    return mpn::Natural::from_limbs(std::move(out_limbs));
}

std::vector<mpn::Natural>
GatherUnit::gather_combined(const std::vector<u128>& psums, unsigned mode,
                            GatherStats* stats) const
{
    CAMP_ASSERT(mode >= 1 && (mode & (mode - 1)) == 0);
    CAMP_ASSERT(psums.size() % mode == 0);
    std::vector<mpn::Natural> results;
    results.reserve(psums.size() / mode);
    for (std::size_t base = 0; base < psums.size(); base += mode) {
        const std::vector<u128> group(psums.begin() + base,
                                      psums.begin() + base + mode);
        results.push_back(gather(group, stats));
    }
    return results;
}

} // namespace camp::sim
