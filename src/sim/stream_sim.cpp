#include "sim/stream_sim.hpp"

#include <algorithm>

#include "sim/analytic_model.hpp"
#include "support/assert.hpp"

namespace camp::sim {

StreamingSimulator::StreamingSimulator(const SimConfig& config,
                                       unsigned buffer_waves)
    : config_(config), buffer_waves_(std::max(1u, buffer_waves))
{
}

StreamStats
StreamingSimulator::run_multiply(std::uint64_t bits_a,
                                 std::uint64_t bits_b) const
{
    StreamStats stats;
    if (bits_a == 0 || bits_b == 0)
        return stats;
    const AnalyticModel model(config_);
    const unsigned L = config_.limb_bits;
    const std::uint64_t nx = (bits_a + L - 1) / L;
    const std::uint64_t ny = (bits_b + L - 1) / L;
    const ScheduleCounts counts = model.multiply_counts(nx, ny);
    stats.waves = counts.waves;

    // Bytes crossing the LLC boundary, evenly pipelined across waves
    // (operand inflow and product outflow share the duty-limited
    // bandwidth, so both gate the stream).
    const double total_bytes =
        static_cast<double>((bits_a + 7) / 8 + (bits_b + 7) / 8 +
                            (bits_a + bits_b + 7) / 8);
    const double bytes_per_wave = total_bytes / counts.waves;
    const double bpc = config_.llc_bytes_per_cycle();

    // Cycle-accounted pipeline: compute may start wave w only once
    // (w+1) * bytes_per_wave bytes have streamed; the CMA prefetches
    // during compute, capped at buffer_waves waves ahead (the PEMA
    // block-buffer depth).
    double fetched = 0; // bytes delivered so far
    std::uint64_t cycle = 0;

    for (std::uint64_t wave = 0; wave < counts.waves; ++wave) {
        const double need = (wave + 1) * bytes_per_wave;
        if (fetched + 1e-9 < need) {
            const std::uint64_t wait = static_cast<std::uint64_t>(
                (need - fetched) / bpc + 0.999999);
            cycle += wait;
            if (wave == 0)
                stats.fill_cycles += wait;
            else
                stats.stall_cycles += wait;
            fetched = need;
        }
        // Compute the wave; concurrent prefetch bounded by buffering.
        const double cap = need + buffer_waves_ * bytes_per_wave;
        fetched = std::min({total_bytes, fetched + L * bpc, cap});
        cycle += L;
    }
    stats.cycles = cycle;
    return stats;
}

} // namespace camp::sim
