/**
 * @file
 * Gather Unit: carry parallel computing (paper §IV-A, Fig. 7c, Fig. 10).
 *
 * Partial sums arrive as L-bit-aligned overlapping bitflows
 * (partial_sum_i weighted by 2^(iL)). Gathering splits the accumulation
 * into independent L-bit segments; each segment's sum is evaluated for
 * every possible incoming carry *in advance*, then a selection chain
 * picks the realized value — so all segments compute in parallel and
 * the dependency chain reduces from N*L serial cycles to L + N.
 *
 * The unit also models the FA-disable combining modes of Fig. 10
 * (every 1/2/4/.../N_IPU flows gathered into one result).
 */
#ifndef CAMP_SIM_GATHER_UNIT_HPP
#define CAMP_SIM_GATHER_UNIT_HPP

#include <cstdint>
#include <vector>

#include "mpn/natural.hpp"
#include "sim/config.hpp"
#include "support/fault.hpp"

namespace camp::sim {

/** Latency model outcome for one gather. */
struct GatherStats
{
    std::uint64_t fa_bit_ops = 0;      ///< full-adder activations
    std::uint64_t carry_variants = 0;  ///< speculative segment sums
    std::uint64_t latency_parallel = 0; ///< carry parallel computing
    std::uint64_t latency_sequential = 0; ///< naive ripple gathering
};

/** Carry-parallel gatherer over L-bit aligned partial-sum flows. */
class GatherUnit
{
  public:
    explicit GatherUnit(const SimConfig& config = default_config());

    /**
     * Gather partial sums: result = sum_i psums[i] * 2^(i * L).
     * Functionally exact for partial sums of any width; the carry
     * budget per segment is asserted against the §IV-A bound.
     */
    mpn::Natural gather(const std::vector<u128>& psums,
                        GatherStats* stats = nullptr) const;

    /**
     * Fig. 10 combining: with mode m (power of two, <= flows), every
     * group of m flows is gathered into one independent result.
     */
    std::vector<mpn::Natural>
    gather_combined(const std::vector<u128>& psums, unsigned mode,
                    GatherStats* stats = nullptr) const;

    /** Attach (or detach with nullptr) a fault source; gather() then
     * draws one GatherCarry opportunity per call. */
    void set_fault_engine(FaultEngine* faults) { faults_ = faults; }

  private:
    const SimConfig& config_;
    FaultEngine* faults_ = nullptr;
};

} // namespace camp::sim

#endif // CAMP_SIM_GATHER_UNIT_HPP
