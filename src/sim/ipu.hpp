/**
 * @file
 * Bit-indexed IPU (Inner-Product Unit): the pattern-indexing and
 * weighted-gathering stages of BIPS (paper Fig. 8 / Fig. 9c).
 *
 * For each index-bit position j (streamed LSB first from the q index
 * operands), the multiplexer selects pattern z[idx_j], where idx_j is
 * the q-bit column of the index operands' bit matrix; the bit-serial
 * accumulator adds it at weight 2^j. The BIPS identity
 *     sum_i x_i * y_i == sum_j 2^j * z[idx_j]
 * is what the unit computes, with zero-valued columns (bit sparsity)
 * and repeated columns (repeated computation) never costing multiplier
 * work — the paper's intra-IPU bit-level redundancy elimination.
 *
 * A naive bit-serial MAC mode (Fig. 6b, the Stripes/Bit-Tactical style
 * baseline) is provided for the ablation benchmarks.
 */
#ifndef CAMP_SIM_IPU_HPP
#define CAMP_SIM_IPU_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "sim/bitflow.hpp"
#include "sim/config.hpp"
#include "sim/converter.hpp"

namespace camp::sim {

/** Per-operation counters used by energy and ablation accounting. */
struct IpuStats
{
    std::uint64_t selects = 0;        ///< mux activations (one per j)
    std::uint64_t zero_skips = 0;     ///< columns that selected z[0]
    std::uint64_t accum_bit_ops = 0;  ///< accumulator full-adder bits
    std::uint64_t naive_bit_ops = 0;  ///< cost of the naive mode
    std::uint64_t cycles = 0;
};

/** One 4-element inner product task: x and y limbs (L-bit each). */
struct IpuTask
{
    std::array<std::uint32_t, 4> x{};
    std::array<std::uint32_t, 4> y{};
};

/** Functional bit-indexed inner-product unit. */
class Ipu
{
  public:
    explicit Ipu(const SimConfig& config = default_config());

    /**
     * BIPS execution over pre-generated pattern flows. @p patterns must
     * come from Converter::convert on the task's x flows.
     */
    u128 run_bips(const std::vector<Bitflow>& patterns,
                  const std::array<std::uint32_t, 4>& y,
                  IpuStats* stats = nullptr) const;

    /** Full task: converts x internally, then runs BIPS. */
    u128 run_task(const IpuTask& task, IpuStats* stats = nullptr,
                  ConverterStats* conv_stats = nullptr) const;

    /** Naive bit-serial MAC baseline (shift-add per set y bit). */
    u128 run_naive(const IpuTask& task, IpuStats* stats = nullptr) const;

    /** Attach (or detach with nullptr) a fault source; run_bips then
     * draws one IpuAccumulator opportunity per task, and the internal
     * converter draws its own site. */
    void
    set_fault_engine(FaultEngine* faults)
    {
        faults_ = faults;
        converter_.set_fault_engine(faults);
    }

  private:
    const SimConfig& config_;
    Converter converter_;
    FaultEngine* faults_ = nullptr;
};

} // namespace camp::sim

#endif // CAMP_SIM_IPU_HPP
