#include "sim/controller.hpp"

#include "support/assert.hpp"

namespace camp::sim {

std::vector<IpuWork>
PeController::split_position(std::uint32_t t, std::uint32_t j_begin,
                             std::uint32_t j_end, const SimConfig& config)
{
    std::vector<IpuWork> works;
    for (std::uint32_t j = j_begin; j < j_end; j += config.q)
        works.push_back(
            {t, j, std::min<std::uint32_t>(j + config.q, j_end)});
    return works;
}

Schedule
CoreController::schedule_multiply(std::size_t nx, std::size_t ny,
                                  const SimConfig& config)
{
    CAMP_ASSERT(nx >= 1 && ny >= 1);
    Schedule schedule;
    schedule.per_pe.resize(config.n_pe);
    const std::size_t positions = nx + ny - 1;
    for (std::size_t t = 0; t < positions; ++t) {
        // Valid pairs x_{t-j} * y_j: j in [max(0, t-nx+1), min(ny-1, t)].
        const std::uint32_t lo = static_cast<std::uint32_t>(
            t >= nx - 1 ? t - (nx - 1) : 0);
        const std::uint32_t hi =
            static_cast<std::uint32_t>(std::min(ny - 1, t));
        const auto works = PeController::split_position(
            static_cast<std::uint32_t>(t), lo, hi + 1, config);
        auto& pe = schedule.per_pe[t % config.n_pe];
        pe.insert(pe.end(), works.begin(), works.end());
        schedule.total_tasks += works.size();
    }
    std::size_t max_pe_tasks = 0;
    for (const auto& pe : schedule.per_pe)
        max_pe_tasks = std::max(max_pe_tasks, pe.size());
    schedule.waves =
        (max_pe_tasks + config.n_ipu - 1) / config.n_ipu;
    return schedule;
}

} // namespace camp::sim
