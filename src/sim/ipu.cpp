#include "sim/ipu.hpp"

#include <bit>

#include "support/assert.hpp"

namespace camp::sim {

Ipu::Ipu(const SimConfig& config) : config_(config), converter_(config)
{
    CAMP_ASSERT(config_.q == 4 && config_.limb_bits == 32);
}

u128
Ipu::run_bips(const std::vector<Bitflow>& patterns,
              const std::array<std::uint32_t, 4>& y,
              IpuStats* stats) const
{
    CAMP_ASSERT(patterns.size() == config_.patterns());
    const unsigned py = config_.limb_bits;
    u128 acc = 0;
    std::uint64_t selects = 0, zero_skips = 0, accum_bits = 0;
    for (unsigned j = 0; j < py; ++j) {
        // idx_j: the j-th column of the y bit matrix.
        unsigned idx = 0;
        for (unsigned i = 0; i < config_.q; ++i)
            idx |= ((y[i] >> j) & 1u) << i;
        ++selects;
        if (idx == 0) {
            ++zero_skips; // bit sparsity: nothing to accumulate
            continue;
        }
        const u128 z = patterns[idx].value();
        acc += z << j;
        // Bit-serial accumulator touches (p_x + q) positions per add.
        accum_bits += config_.limb_bits + config_.q;
    }
    if (stats) {
        stats->selects += selects;
        stats->zero_skips += zero_skips;
        stats->accum_bit_ops += accum_bits;
        stats->cycles += py;
    }
    // Fault injection: a single-event upset flips one accumulator bit.
    if (faults_ && faults_->fire(FaultSite::IpuAccumulator))
        acc ^= static_cast<u128>(1)
               << faults_->below(2 * config_.limb_bits + config_.q);
    return acc;
}

u128
Ipu::run_task(const IpuTask& task, IpuStats* stats,
              ConverterStats* conv_stats) const
{
    std::vector<Bitflow> xflows;
    xflows.reserve(config_.q);
    for (unsigned i = 0; i < config_.q; ++i)
        xflows.push_back(
            Bitflow::from_value(task.x[i], config_.limb_bits));
    const std::uint64_t injected_before =
        faults_ ? faults_->total_injected() : 0;
    const auto patterns = converter_.convert(xflows, conv_stats);
    const u128 result = run_bips(patterns, task.y, stats);

    // Cross-check the BIPS identity against the direct inner product —
    // unless a fault was injected into this task, in which case the
    // mismatch is the intended behaviour and detection belongs to the
    // self-checking layers above.
    if (!faults_ || faults_->total_injected() == injected_before) {
        u128 direct = 0;
        for (unsigned i = 0; i < config_.q; ++i)
            direct += static_cast<u128>(task.x[i]) * task.y[i];
        CAMP_ASSERT_MSG(result == direct, "BIPS identity violated");
    }
    return result;
}

u128
Ipu::run_naive(const IpuTask& task, IpuStats* stats) const
{
    // The straightforward bit-serial scheme of §IV-B: every multiplier
    // bit costs a p_x-bit addition step (q * p_x * p_y bops total) —
    // the denominator of the paper's lambda ratio. Zero bits skip the
    // arithmetic result-wise but still occupy the schedule.
    u128 acc = 0;
    std::uint64_t bit_ops = 0, selects = 0, zero_skips = 0;
    for (unsigned i = 0; i < config_.q; ++i) {
        for (unsigned j = 0; j < config_.limb_bits; ++j) {
            ++selects;
            bit_ops += config_.limb_bits; // p_x-bit add step
            if (((task.y[i] >> j) & 1u) == 0) {
                ++zero_skips;
                continue;
            }
            acc += static_cast<u128>(task.x[i]) << j;
        }
    }
    if (stats) {
        stats->selects += selects;
        stats->zero_skips += zero_skips;
        stats->naive_bit_ops += bit_ops;
        stats->cycles += static_cast<std::uint64_t>(config_.q) *
                         config_.limb_bits;
    }
    return acc;
}

} // namespace camp::sim
