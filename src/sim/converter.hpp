/**
 * @file
 * Converter: the patterns-generation stage of BIPS (paper Fig. 9b).
 * Receives q input bitflows and emits 2^q pattern bitflows, where
 * pattern s is the subset sum of the inputs selected by the bits of s.
 * Built from bit-serial adders with reuse (z3 = x0+x1 and z12 = x2+x3
 * feed z15 = z3+z12), so only 2^q - q - 1 serial adders are active —
 * exactly the paper's pattern-generation bops bound.
 */
#ifndef CAMP_SIM_CONVERTER_HPP
#define CAMP_SIM_CONVERTER_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "sim/bitflow.hpp"
#include "sim/config.hpp"
#include "support/fault.hpp"

namespace camp::sim {

/** Statistics from one conversion. */
struct ConverterStats
{
    std::uint64_t adder_bit_ops = 0; ///< serial full-adder activations
    std::uint64_t cycles = 0;        ///< stream length processed
};

/** Bit-serial subset-sum pattern generator (q = 4). */
class Converter
{
  public:
    explicit Converter(const SimConfig& config = default_config());

    /**
     * Convert q input bitflows into 2^q pattern bitflows. Pattern
     * streams are extended by q extra cycles to drain carries.
     */
    std::vector<Bitflow> convert(const std::vector<Bitflow>& inputs,
                                 ConverterStats* stats = nullptr) const;

    /** Number of active serial adders: 2^q - q - 1. */
    unsigned active_adders() const;

    /** Attach (or detach with nullptr) a fault source; convert() then
     * draws one ConverterPattern opportunity per call. */
    void set_fault_engine(FaultEngine* faults) { faults_ = faults; }

  private:
    const SimConfig& config_;
    FaultEngine* faults_ = nullptr;
};

} // namespace camp::sim

#endif // CAMP_SIM_CONVERTER_HPP
