/**
 * @file
 * Analytic performance model of Cambricon-P, validated against the
 * functional Core on small operands (tests/test_sim_core.cpp) and used
 * by MPApca for large sweeps where functional simulation would be
 * pointlessly slow. Cycle counts follow the bit-serial schedule: each
 * wave of IPU tasks streams limb_bits index bits, and the memory agent
 * bound applies the duty-limited LLC bandwidth (Fig. 12 roofline).
 */
#ifndef CAMP_SIM_ANALYTIC_MODEL_HPP
#define CAMP_SIM_ANALYTIC_MODEL_HPP

#include <cstdint>

#include "sim/config.hpp"
#include "sim/core.hpp"

namespace camp::sim {

/** Closed-form schedule counts matching CoreController. */
struct ScheduleCounts
{
    std::uint64_t tasks = 0;
    std::uint64_t waves = 0;
};

/** Analytic cycle/energy model. */
class AnalyticModel
{
  public:
    explicit AnalyticModel(const SimConfig& config = default_config());

    const SimConfig& config() const { return config_; }

    /** Task/wave counts for an nx-limb x ny-limb convolution
     * (hardware L-bit limbs), matching CoreController exactly. */
    ScheduleCounts multiply_counts(std::uint64_t nx,
                                   std::uint64_t ny) const;

    /** Synthetic statistics for one monolithic multiplication; both
     * operands must fit the monolithic capability. */
    CoreStats multiply_stats(std::uint64_t bits_a,
                             std::uint64_t bits_b) const;

    /** Cycles of one monolithic multiplication. */
    std::uint64_t multiply_cycles(std::uint64_t bits_a,
                                  std::uint64_t bits_b) const;

    /** Statistics for an addition/subtraction of the given widths
     * (bandwidth bound; carries handled by chained GUs, §V-C). */
    CoreStats linear_stats(std::uint64_t bits, unsigned streams = 3) const;

    /** Statistics for a standalone bit shift (stream copy; fused shifts
     * are free timing offsets per §V-C). */
    CoreStats shift_stats(std::uint64_t bits) const;

    /** Equivalent 64-bit MAC operations of a multiplication (roofline
     * performance metric). */
    static double
    equivalent_mac64(std::uint64_t bits_a, std::uint64_t bits_b)
    {
        return (static_cast<double>(bits_a) / 64.0) *
               (static_cast<double>(bits_b) / 64.0);
    }

    /** Peak equivalent MAC64/s of the configuration. */
    double peak_mac64_per_s() const;

  private:
    SimConfig config_;
};

} // namespace camp::sim

#endif // CAMP_SIM_ANALYTIC_MODEL_HPP
