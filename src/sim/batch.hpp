/**
 * @file
 * Batch-processing mode (paper §V-B3 / §VII-B): because indexes and
 * patterns can belong to different vectors and GUs combine
 * configurable IPU groups (Fig. 10), Cambricon-P also executes many
 * independent small multiplications concurrently — the CGBN/V100
 * scenario. The abstract's claim is identical batch throughput at
 * 430x less area and 60.5x less power; bench/batch_throughput
 * regenerates that comparison.
 */
#ifndef CAMP_SIM_BATCH_HPP
#define CAMP_SIM_BATCH_HPP

#include <cstdint>
#include <vector>

#include "mpn/natural.hpp"
#include "sim/core.hpp"

namespace camp::sim {

/** Result of a batch execution. */
struct BatchResult
{
    std::vector<mpn::Natural> products;
    std::uint64_t tasks = 0;
    std::uint64_t waves = 0;
    std::uint64_t cycles = 0;       ///< max(compute, memory)
    std::uint64_t bytes = 0;
    double seconds(const SimConfig& config) const
    {
        return static_cast<double>(cycles) / (config.freq_ghz * 1e9);
    }
    /** Amortized per-product time (the CGBN reporting convention). */
    double
    amortized_seconds(const SimConfig& config) const
    {
        return products.empty() ? 0.0
                                : seconds(config) / products.size();
    }
};

/** Batch executor over the same PE/IPU fabric as Core. */
class BatchEngine
{
  public:
    explicit BatchEngine(const SimConfig& config = default_config(),
                         bool validate = true);

    /**
     * Multiply @p pairs of equal-shaped operands concurrently. All IPU
     * tasks from all products share the fabric; waves are computed as
     * in the monolithic mode, and each product's partial sums are
     * gathered by its PE group's GU in the matching combine mode.
     */
    BatchResult
    multiply_batch(const std::vector<std::pair<mpn::Natural,
                                               mpn::Natural>>& pairs);

  private:
    SimConfig config_;
    bool validate_;
    GatherUnit gather_unit_;
};

} // namespace camp::sim

#endif // CAMP_SIM_BATCH_HPP
