/**
 * @file
 * Batch-processing mode (paper §V-B3 / §VII-B): because indexes and
 * patterns can belong to different vectors and GUs combine
 * configurable IPU groups (Fig. 10), Cambricon-P also executes many
 * independent small multiplications concurrently — the CGBN/V100
 * scenario. The abstract's claim is identical batch throughput at
 * 430x less area and 60.5x less power; bench/batch_throughput
 * regenerates that comparison.
 *
 * Host-side parallelism: the products of a batch are independent, so
 * the engine distributes them across the support::ThreadPool. Every
 * product owns its PE-group state — its own CoreMemoryAgent, its own
 * GatherUnit, and (when fault injection is armed) its own FaultEngine
 * seeded `faults.seed + product_index` — so the injected fault
 * sequence of product i is a pure function of the config seed and i,
 * replayable at any thread count, and an N-thread batch is
 * bit-identical to a serial one. Aggregate accounting (tasks, waves,
 * bytes, cycles) is folded in product order after the join.
 */
#ifndef CAMP_SIM_BATCH_HPP
#define CAMP_SIM_BATCH_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "mpn/natural.hpp"
#include "mpn/view.hpp"
#include "sim/core.hpp"

namespace camp::sim {

/** Per-product accounting, exposed so determinism tests can compare
 * serial and pooled runs element-wise (not just in aggregate). */
struct BatchProductStats
{
    std::uint64_t tasks = 0;
    std::uint64_t bytes = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t injected = 0; ///< faults injected into this product
    bool faulty = false;        ///< failed validation (armed runs)

    bool
    operator==(const BatchProductStats& other) const
    {
        return tasks == other.tasks && bytes == other.bytes &&
               stall_cycles == other.stall_cycles &&
               injected == other.injected && faulty == other.faulty;
    }
};

/** Result of a batch execution. */
struct BatchResult
{
    std::vector<mpn::Natural> products;
    std::vector<BatchProductStats> per_product; ///< aligned with products
    std::uint64_t tasks = 0;
    std::uint64_t waves = 0;
    std::uint64_t cycles = 0;       ///< max(compute, memory)
    std::uint64_t bytes = 0;
    unsigned parallelism = 1;       ///< host executors used
    std::uint64_t injected = 0;     ///< faults injected (armed runs)
    std::uint64_t faulty = 0;       ///< products that failed validation
    double seconds(const SimConfig& config) const
    {
        return static_cast<double>(cycles) / (config.freq_ghz * 1e9);
    }
    /** Amortized per-product time (the CGBN reporting convention). */
    double
    amortized_seconds(const SimConfig& config) const
    {
        return products.empty() ? 0.0
                                : seconds(config) / products.size();
    }
};

/** Batch executor over the same PE/IPU fabric as Core. */
class BatchEngine
{
  public:
    explicit BatchEngine(const SimConfig& config = default_config(),
                         bool validate = true);

    /**
     * Multiply @p pairs of equal-shaped operands concurrently. All IPU
     * tasks from all products share the fabric; waves are computed as
     * in the monolithic mode, and each product's partial sums are
     * gathered by its PE group's GU in the matching combine mode.
     *
     * @p parallelism picks the host-side execution: 0 = auto (fork
     * across the global pool when it has workers), 1 = serial on the
     * calling thread, >= 2 = fork (actual concurrency is bounded by
     * the pool). Products are bit-identical across all settings.
     *
     * @p seed_indices, when non-null, gives each product's fault-seed
     * offset (seed = faults.seed + seed_indices[i]) instead of its
     * position i. A scheduler splitting one logical wave across
     * several engine instances passes the wave-global indices so the
     * per-product fault stream is invariant under the split (the
     * resharding-determinism contract of exec::ShardedScheduler).
     * Must be pairs.size() long when given.
     *
     * Without fault injection a validation mismatch aborts (library
     * bug); with any fault site armed, mismatching products are
     * *expected* and only counted in BatchResult::faulty — recovery
     * policy (retry / CPU fallback) lives in mpapca::Runtime.
     */
    BatchResult
    multiply_batch(const std::vector<std::pair<mpn::Natural,
                                               mpn::Natural>>& pairs,
                   unsigned parallelism = 0,
                   const std::vector<std::uint64_t>* seed_indices =
                       nullptr);

    /**
     * multiply_batch over operand *views* (wave-owned limb runs, see
     * exec::WaveBuffer): the simulated core streams each operand into
     * its SRAM from wherever the view points, so the host side needs
     * no Natural materialization before the call — the per-product
     * copy happens on the pool thread, inside the simulated stream-in
     * boundary. Semantics (fault streams, accounting, bit-identity
     * across parallelism) are exactly multiply_batch's; @p views must
     * stay valid for the whole call.
     */
    BatchResult
    multiply_batch_views(const std::pair<mpn::LimbView,
                                         mpn::LimbView>* views,
                         std::size_t count, unsigned parallelism = 0,
                         const std::vector<std::uint64_t>* seed_indices =
                             nullptr);

  private:
    /** Everything one product contributes to the aggregate. */
    struct ProductOutcome
    {
        mpn::Natural product;
        std::uint64_t tasks = 0;
        std::uint64_t bytes = 0;
        std::uint64_t stall_cycles = 0;
        std::uint64_t injected = 0;
        bool faulty = false;
    };

    ProductOutcome multiply_one(std::uint64_t seed_index,
                                const mpn::Natural& a,
                                const mpn::Natural& b) const;

    /** Chunked fork of [0, count) across the global pool (serial when
     * parallelism==1 or the pool is empty); returns executors used. */
    unsigned run_slices(
        std::size_t count, unsigned parallelism,
        const std::function<void(std::size_t, std::size_t)>& run_slice)
        const;

    /** Fold outcomes in product order into @p result (products,
     * per-product stats, aggregates, waves/cycles, batch metrics). */
    void fold_outcomes(std::vector<ProductOutcome>& outcomes,
                       BatchResult& result) const;

    SimConfig config_;
    bool validate_;
};

} // namespace camp::sim

#endif // CAMP_SIM_BATCH_HPP
