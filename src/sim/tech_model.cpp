#include "sim/tech_model.hpp"

#include <sstream>

#include "support/table.hpp"

namespace camp::sim {

AreaBreakdown
cambricon_p_area(const SimConfig& config)
{
    // Proportions: the datapath (IPUs) dominates; converters and GUs
    // are per-PE; control and memory agents are small. Scaled so the
    // default configuration totals the paper's 1.894 mm^2.
    const double total = 1.894;
    const double scale =
        (static_cast<double>(config.n_pe) * config.n_ipu) /
        (256.0 * 32.0);
    AreaBreakdown area{};
    area.ipus = 0.62 * total * scale;
    area.converters = 0.10 * total * scale;
    area.gather_units = 0.12 * total * scale;
    area.controllers = 0.06 * total * scale;
    area.memory_agents = 0.06 * total * scale;
    area.adder_tree = 0.04 * total * scale;
    return area;
}

EnergyModel
cambricon_p_energy(const SimConfig& config)
{
    // Calibration: at full utilization the chip sustains
    //   tasks/s      = total_ipus * freq / limb_bits
    //   selects/s    = total_ipus * freq            (one mux per cycle)
    //   accum bits/s = selects/s * (limb_bits + q)  (worst case)
    //   conv bits/s  = (2^q - q - 1)/limb per select-ish
    //   LLC bytes/s  = llc_gbps * duty
    // With the constants below, full-rate dynamic power + static is
    // ~3.64 W, the paper's figure; see bench/table3_comparison which
    // prints the modelled power for the Table III workload.
    (void)config;
    EnergyModel e{};
    e.per_ipu_select = 0.06e-12;  // 60 fJ per 16:1 x 34-bit mux + route
    e.per_accum_bit = 3.0e-15;    // ~3 fJ per full-adder bit at 16 nm
    e.per_converter_bit = 3.0e-15;
    e.per_gather_fa_bit = 3.0e-15;
    e.per_llc_byte = 2.0e-12;     // pJ/B LLC slice access
    e.static_watts = 0.36;        // ~10% of the published total
    return e;
}

double
EnergyModel::energy(const CoreStats& stats, const SimConfig& config) const
{
    const double dynamic =
        per_ipu_select * static_cast<double>(stats.ipu.selects) +
        per_accum_bit * static_cast<double>(stats.ipu.accum_bit_ops) +
        per_converter_bit *
            static_cast<double>(stats.converter.adder_bit_ops) +
        per_gather_fa_bit *
            static_cast<double>(stats.gather.fa_bit_ops) +
        per_llc_byte * static_cast<double>(stats.bytes);
    return dynamic + static_watts * stats.seconds(config);
}

double
EnergyModel::power(const CoreStats& stats, const SimConfig& config) const
{
    const double t = stats.seconds(config);
    return t > 0 ? energy(stats, config) / t : 0.0;
}

std::string
area_table(const AreaBreakdown& area)
{
    Table table({"component", "area (mm^2)", "share"});
    auto row = [&](const char* name, double a) {
        char share[32];
        std::snprintf(share, sizeof(share), "%4.1f%%",
                      100.0 * a / area.total());
        table.add_row({name, Table::fmt(a), share});
    };
    row("IPUs (8192x bit-indexed)", area.ipus);
    row("Converters", area.converters);
    row("Gather Units", area.gather_units);
    row("Controllers (CC+PEC)", area.controllers);
    row("Memory agents (CMA+PEMA)", area.memory_agents);
    row("Adder Tree", area.adder_tree);
    std::ostringstream out;
    out << table.to_string() << "total: " << Table::fmt(area.total())
        << " mm^2 (TSMC 16 nm)\n";
    return out.str();
}

} // namespace camp::sim
