/**
 * @file
 * Technology model: area and energy constants for Cambricon-P under
 * TSMC 16 nm, calibrated so the full configuration reproduces the
 * paper's published totals (1.894 mm^2, 3.644 W at 2 GHz, §VII-A).
 *
 * Substitution note (DESIGN.md §4): the paper derives these numbers
 * from synthesized, placed & routed RTL. Without a PDK we invert the
 * calibration: component proportions are taken from typical 16 nm cell
 * costs, scaled so the totals match the paper exactly; energies per
 * event are then chosen so full-utilization power matches. All
 * evaluation results use these constants only as scale factors.
 */
#ifndef CAMP_SIM_TECH_MODEL_HPP
#define CAMP_SIM_TECH_MODEL_HPP

#include <cstdint>
#include <string>

#include "sim/config.hpp"
#include "sim/core.hpp"

namespace camp::sim {

/** Area breakdown in mm^2. */
struct AreaBreakdown
{
    double ipus;        ///< all bit-indexed IPUs
    double converters;  ///< pattern generators
    double gather_units;
    double controllers; ///< CC + PECs
    double memory_agents;
    double adder_tree;

    double
    total() const
    {
        return ipus + converters + gather_units + controllers +
               memory_agents + adder_tree;
    }
};

/** Energy constants (joules per event). */
struct EnergyModel
{
    double per_ipu_select;      ///< mux activation
    double per_accum_bit;       ///< accumulator full-adder bit
    double per_converter_bit;   ///< converter serial-adder bit
    double per_gather_fa_bit;   ///< GU full-adder bit
    double per_llc_byte;        ///< LLC access
    double static_watts;        ///< leakage + clock tree

    /** Energy of one simulated operation. */
    double energy(const CoreStats& stats, const SimConfig& config) const;

    /** Average power of one simulated operation. */
    double power(const CoreStats& stats, const SimConfig& config) const;
};

/** Calibrated models for the default configuration. */
AreaBreakdown cambricon_p_area(const SimConfig& config = default_config());
EnergyModel cambricon_p_energy(const SimConfig& config = default_config());

/** Render the area breakdown table. */
std::string area_table(const AreaBreakdown& area);

} // namespace camp::sim

#endif // CAMP_SIM_TECH_MODEL_HPP
