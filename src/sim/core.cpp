#include "sim/core.hpp"

#include "mpn/basic.hpp"
#include "mpn/mul.hpp"
#include "sim/memory_agent.hpp"
#include "support/assert.hpp"
#include "support/errors.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace camp::sim {

namespace {

/** Registered-once per-stage pipeline counters (the software analogue
 * of the paper's Fig. 2 stage attribution). */
struct CoreMetrics
{
    support::metrics::Counter* multiplies;
    support::metrics::Counter* tasks;
    support::metrics::Counter* waves;
    support::metrics::Counter* ipu_cycles;
    support::metrics::Counter* ipu_zero_skips;
    support::metrics::Counter* converter_cycles;
    support::metrics::Counter* gu_fa_bit_ops;
    support::metrics::Counter* gu_latency_parallel;
    support::metrics::Counter* cma_cycles;
    support::metrics::Counter* cma_stall_cycles;
    support::metrics::Counter* cma_bytes;
};

CoreMetrics&
core_metrics()
{
    static CoreMetrics* m = [] {
        namespace metrics = support::metrics;
        auto* cm = new CoreMetrics;
        cm->multiplies = &metrics::counter("sim.core.multiplies");
        cm->tasks = &metrics::counter("sim.core.tasks");
        cm->waves = &metrics::counter("sim.core.waves");
        cm->ipu_cycles = &metrics::counter("sim.ipu.cycles");
        cm->ipu_zero_skips = &metrics::counter("sim.ipu.zero_skips");
        cm->converter_cycles =
            &metrics::counter("sim.converter.cycles");
        cm->gu_fa_bit_ops = &metrics::counter("sim.gu.fa_bit_ops");
        cm->gu_latency_parallel =
            &metrics::counter("sim.gu.latency_parallel");
        cm->cma_cycles = &metrics::counter("sim.cma.cycles");
        cm->cma_stall_cycles =
            &metrics::counter("sim.cma.stall_cycles");
        cm->cma_bytes = &metrics::counter("sim.cma.bytes");
        return cm;
    }();
    return *m;
}

/** Fold one finished operation's stats into the stage counters. */
void
record_core_stats(const CoreStats& stats,
                  std::uint64_t cma_stalls)
{
    CoreMetrics& m = core_metrics();
    m.multiplies->add();
    m.tasks->add(stats.tasks);
    m.waves->add(stats.waves);
    m.ipu_cycles->add(stats.ipu.cycles);
    m.ipu_zero_skips->add(stats.ipu.zero_skips);
    m.converter_cycles->add(stats.converter.cycles);
    m.gu_fa_bit_ops->add(stats.gather.fa_bit_ops);
    m.gu_latency_parallel->add(stats.gather.latency_parallel);
    m.cma_cycles->add(stats.memory_cycles);
    m.cma_stall_cycles->add(cma_stalls);
    m.cma_bytes->add(stats.bytes);
}

} // namespace

std::vector<std::uint32_t>
to_hw_limbs(const mpn::Natural& n, unsigned limb_bits)
{
    CAMP_ASSERT(limb_bits == 32);
    std::vector<std::uint32_t> limbs;
    limbs.reserve(2 * n.size());
    for (std::size_t i = 0; i < n.size(); ++i) {
        const mpn::Limb limb = n.limb(i);
        limbs.push_back(static_cast<std::uint32_t>(limb));
        limbs.push_back(static_cast<std::uint32_t>(limb >> 32));
    }
    while (!limbs.empty() && limbs.back() == 0)
        limbs.pop_back();
    return limbs;
}

Core::Core(const SimConfig& config, Fidelity fidelity, bool validate)
    : config_(validated(config)),
      fidelity_(fidelity),
      validate_(validate),
      faults_(config_.faults.enabled()
                  ? std::make_unique<FaultEngine>(config_.faults)
                  : nullptr),
      ipu_(config_),
      gather_unit_(config_)
{
    if (faults_) {
        ipu_.set_fault_engine(faults_.get());
        gather_unit_.set_fault_engine(faults_.get());
    }
}

u128
Core::run_work(const IpuWork& work, const std::vector<std::uint32_t>& x,
               const std::vector<std::uint32_t>& y,
               CoreStats& stats) const
{
    IpuTask task;
    unsigned k = 0;
    for (std::uint32_t j = work.j_begin; j < work.j_end; ++j, ++k) {
        task.x[k] = x[work.t - j];
        task.y[k] = y[j];
    }
    if (fidelity_ == Fidelity::BitSerial)
        return ipu_.run_task(task, &stats.ipu, &stats.converter);

    // Fast fidelity: identical dataflow accounting, word-level math.
    u128 acc = 0;
    for (unsigned i = 0; i < config_.q; ++i) {
        acc += static_cast<u128>(task.x[i]) * task.y[i];
        // Accounting mirrors run_bips/convert: selects per y bit with
        // zero-column skips, accumulator adds, converter adders.
    }
    if (faults_) {
        // Same fault surface as the bit-serial path: an accumulator
        // single-event upset flips one bit; a corrupted pattern z[idx]
        // at column j perturbs the accumulator by delta << j.
        if (faults_->fire(FaultSite::IpuAccumulator))
            acc ^= static_cast<u128>(1)
                   << faults_->below(2 * config_.limb_bits + config_.q);
        if (faults_->fire(FaultSite::ConverterPattern))
            acc += static_cast<u128>(1 + faults_->below(15))
                   << faults_->below(config_.limb_bits);
    }
    unsigned nonzero_cols = 0;
    for (unsigned j = 0; j < config_.limb_bits; ++j) {
        unsigned idx = 0;
        for (unsigned i = 0; i < config_.q; ++i)
            idx |= ((task.y[i] >> j) & 1u) << i;
        if (idx != 0)
            ++nonzero_cols;
    }
    stats.ipu.selects += config_.limb_bits;
    stats.ipu.zero_skips += config_.limb_bits - nonzero_cols;
    stats.ipu.accum_bit_ops +=
        static_cast<std::uint64_t>(nonzero_cols) *
        (config_.limb_bits + config_.q);
    stats.ipu.cycles += config_.limb_bits;
    stats.converter.adder_bit_ops +=
        static_cast<std::uint64_t>(config_.patterns() - config_.q - 1) *
        (config_.limb_bits + config_.q);
    stats.converter.cycles += config_.limb_bits + config_.q;
    return acc;
}

MulResult
Core::multiply(const mpn::Natural& a, const mpn::Natural& b)
{
    support::trace::Span span("sim.core.multiply", "sim");
    span.arg("bits_a", static_cast<double>(a.bits()));
    span.arg("bits_b", static_cast<double>(b.bits()));
    MulResult result;
    if (a.is_zero() || b.is_zero())
        return result;
    if (a.bits() > config_.monolithic_cap_bits ||
        b.bits() > config_.monolithic_cap_bits) {
        throw InvalidArgument(
            "Core::multiply: operand exceeds the monolithic capability; "
            "decompose in software (MPApca)");
    }

    // Operands stream in through the CMA before compute: under fault
    // injection the delivered limb streams may be truncated or
    // stalled. Traffic is charged for the full requested widths either
    // way, so disabled faults change no byte or cycle accounting.
    CoreMemoryAgent cma(config_, faults_.get());
    auto x = to_hw_limbs(a, config_.limb_bits);
    auto y = to_hw_limbs(b, config_.limb_bits);
    cma.stream_in_limbs(x, a.bits());
    cma.stream_in_limbs(y, b.bits());
    const std::size_t nx = x.size(), ny = y.size();

    // CC/PEC fractal decomposition into IPU tasks.
    const Schedule schedule =
        CoreController::schedule_multiply(nx, ny, config_);
    result.stats.tasks = schedule.total_tasks;
    result.stats.waves = schedule.waves;

    // Execute: per convolution position t, sum the task partial sums
    // (intra-PE gathering), then gather positions with the carry
    // parallel mechanism (GU + Adder Tree).
    std::vector<u128> position_sums(nx + ny - 1, 0);
    for (const auto& pe_work : schedule.per_pe) {
        for (const IpuWork& work : pe_work)
            position_sums[work.t] +=
                run_work(work, x, y, result.stats);
    }
    result.product =
        gather_unit_.gather(position_sums, &result.stats.gather);

    // Result traffic back through the CMA.
    cma.stream_out(a.bits() + b.bits());
    result.stats.bytes = cma.total_bytes();
    result.stats.memory_cycles = cma.cycles();

    // Bit-serial compute time: each wave streams limb_bits index bits.
    result.stats.compute_cycles =
        result.stats.waves * config_.limb_bits;
    result.stats.cycles = std::max(result.stats.compute_cycles,
                                   result.stats.memory_cycles);
    record_core_stats(result.stats, cma.stall_cycles());

    if (validate_) {
        // Cross-check against the software reference (paper §VI-A: "The
        // hardware design is verified with CPU results"). A mismatch is
        // a typed, catchable fault: with injection armed it is the
        // expected detection path, without it it still points at a
        // datapath bug the caller may want to survive.
        const mpn::Natural expect = a * b;
        if (result.product != expect)
            throw HardwareFault(
                "Core::multiply: simulated product mismatch vs mpn "
                "reference");
    }
    return result;
}

} // namespace camp::sim
