/**
 * @file
 * The Cambricon-P core: CC + CMA + N_PE PEs (Converter + IPUs + GU) +
 * Adder Tree (paper Fig. 9a). Core::multiply executes one monolithic
 * arbitrary-precision multiplication exactly as the hardware would —
 * inner-product transformation (Eq. 1), bit-indexed inner products in
 * the IPUs, carry parallel gathering in the GUs — and returns the
 * product (cross-checked against the mpn reference) together with
 * cycle/energy event statistics.
 */
#ifndef CAMP_SIM_CORE_HPP
#define CAMP_SIM_CORE_HPP

#include <cstdint>
#include <memory>

#include "mpn/natural.hpp"
#include "sim/config.hpp"
#include "sim/controller.hpp"
#include "sim/converter.hpp"
#include "sim/gather_unit.hpp"
#include "sim/ipu.hpp"
#include "support/fault.hpp"

namespace camp::sim {

/** Aggregated event counters for one hardware operation. */
struct CoreStats
{
    std::uint64_t tasks = 0;
    std::uint64_t waves = 0;
    std::uint64_t compute_cycles = 0;
    std::uint64_t memory_cycles = 0;
    std::uint64_t cycles = 0; ///< max(compute, memory)
    std::uint64_t bytes = 0;
    ConverterStats converter;
    IpuStats ipu;
    GatherStats gather;

    /** Seconds at the configured clock. */
    double seconds(const SimConfig& config) const
    {
        return static_cast<double>(cycles) / (config.freq_ghz * 1e9);
    }
};

/** Result of a simulated operation. */
struct MulResult
{
    mpn::Natural product;
    CoreStats stats;
};

/** Functional fidelity of the datapath evaluation. */
enum class Fidelity
{
    BitSerial, ///< converter/IPU evaluated bit-serially (slow, exact HW)
    Fast,      ///< same dataflow, word-level arithmetic (identical values)
};

/**
 * The Cambricon-P accelerator core.
 *
 * The constructor validates the configuration (camp::ConfigError on a
 * non-buildable one) and applies fault-injection environment
 * overrides. When any fault site is armed, a seeded FaultEngine is
 * installed into the IPU, Converter, Gather Unit, and CMA; with
 * validation on, a corrupted product surfaces as camp::HardwareFault
 * instead of a wrong result.
 */
class Core
{
  public:
    explicit Core(const SimConfig& config = default_config(),
                  Fidelity fidelity = Fidelity::Fast,
                  bool validate = true);

    /**
     * Monolithic multiplication. Requires
     * bits(a) + bits(b) within the monolithic capability; MPApca
     * decomposes larger operands in software (§V-C).
     * Throws camp::InvalidArgument (a std::invalid_argument) on
     * oversized operands; zero operands short-circuit. With
     * validation on, throws camp::HardwareFault when the datapath
     * result fails the mpn cross-check.
     */
    MulResult multiply(const mpn::Natural& a, const mpn::Natural& b);

    const SimConfig& config() const { return config_; }

    /** Installed fault engine, or nullptr when faults are disabled. */
    FaultEngine* fault_engine() { return faults_.get(); }
    const FaultEngine* fault_engine() const { return faults_.get(); }

  private:
    u128 run_work(const IpuWork& work,
                  const std::vector<std::uint32_t>& x,
                  const std::vector<std::uint32_t>& y,
                  CoreStats& stats) const;

    SimConfig config_;
    Fidelity fidelity_;
    bool validate_;
    std::unique_ptr<FaultEngine> faults_;
    Ipu ipu_;
    GatherUnit gather_unit_;
};

/** Split a Natural into L-bit hardware limbs (LSB first). */
std::vector<std::uint32_t> to_hw_limbs(const mpn::Natural& n,
                                       unsigned limb_bits);

} // namespace camp::sim

#endif // CAMP_SIM_CORE_HPP
