/**
 * @file
 * Cambricon-P hardware configuration (paper §VII-A): 256 PEs x 32 IPUs,
 * 32-bit limbs, q = 4 bitflows per IPU, 2 GHz, LLC integration.
 */
#ifndef CAMP_SIM_CONFIG_HPP
#define CAMP_SIM_CONFIG_HPP

#include <cstdint>

#include "support/fault.hpp"

namespace camp::sim {

/** Static architecture parameters. */
struct SimConfig
{
    unsigned n_pe = 256;       ///< processing elements
    unsigned n_ipu = 32;       ///< inner-product units per PE
    unsigned limb_bits = 32;   ///< L: hardware limb width
    unsigned q = 4;            ///< bitflows (vector elements) per IPU
    double freq_ghz = 2.0;     ///< clock frequency
    double llc_gbps = 512.0;   ///< LLC bandwidth toward Cambricon-P
    double ma_duty = 0.5;      ///< memory-agent duty cycle (paper §VII-B:
                               ///< 50% reserved for coherence traffic)
    /** Largest monolithic multiplication the hardware executes without
     * software decomposition (paper §VII-B: N = 35904). */
    std::uint64_t monolithic_cap_bits = 35904;

    /** Datapath fault injection (all rates zero = faults disabled). */
    FaultConfig faults;

    unsigned total_ipus() const { return n_pe * n_ipu; }

    /** Patterns per converter: 2^q. */
    unsigned patterns() const { return 1u << q; }

    /** LLC bytes per cycle available to the accelerator. */
    double
    llc_bytes_per_cycle() const
    {
        return llc_gbps / freq_ghz * ma_duty;
    }
};

/** The paper's synthesized configuration. */
inline const SimConfig&
default_config()
{
    static const SimConfig config;
    return config;
}

/**
 * Reject configurations that cannot describe buildable hardware:
 * zero/overflowing PE or IPU counts, unsupported limb/bitflow widths,
 * non-positive clock or bandwidth, out-of-range duty cycle or fault
 * rates, zero monolithic capability. Throws camp::ConfigError. Every
 * consumer that instantiates hardware (sim::Core, mpapca::Runtime)
 * funnels through this one function.
 */
void validate(const SimConfig& config);

/**
 * Copy of @p config with fault-injection environment overrides
 * applied (FaultConfig::from_env), then validated. The constructor
 * entry point for Core and Runtime.
 */
SimConfig validated(SimConfig config);

} // namespace camp::sim

#endif // CAMP_SIM_CONFIG_HPP
